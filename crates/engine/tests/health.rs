//! Fleet health plane: breach-to-black-box pipeline and the
//! no-interference contract.
//!
//! 1. an engine serving under an impossible SLO must breach, journal a
//!    typed `SloBreach`, and freeze a flight dump that carries the
//!    breaching window's decision samples alongside that event;
//! 2. with the plane fully on, the 1-shard inline-drift engine still
//!    replays the single-worker `RequestServer` decision for decision,
//!    bit for bit — observation must not perturb the system it observes.

use esharing_core::server::RequestServer;
use esharing_core::{ESharing, SystemConfig};
use esharing_engine::{
    DecisionPath, Engine, EngineConfig, EngineDecision, EventKind, HealthConfig, Partition, SloRule,
};
use esharing_geo::Point;
use esharing_placement::online::{Decision, DriftMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn uniform_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

#[test]
fn tight_slo_breach_freezes_matching_flight_dump() {
    let history = uniform_points(400, 2_000.0, 71);
    let stream = uniform_points(400, 2_000.0, 72);
    let dump_dir = std::env::temp_dir().join(format!(
        "esharing-health-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dump_dir);
    // A decision p99 < 1 ns objective cannot be met: the first sweep
    // that harvests latency data must push both burn windows past 1.
    let engine = Engine::start(
        &history,
        EngineConfig {
            shards: 1,
            partition: Partition::UniformGrid,
            decision_path: DecisionPath::SyncShared,
            health: HealthConfig {
                enabled: true,
                rules: vec![SloRule::quantile_below(
                    "decision_p99_tight",
                    "esharing_decision_latency_ns",
                    0.99,
                    1,
                )
                .with_windows_ms(200, 1_000)],
                sweep_interval_ms: 20,
                min_dump_interval_ms: 0,
                dump_dir: Some(dump_dir.clone()),
                ..HealthConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    // Paced submits so the replay spans many 20 ms sweep intervals and
    // the seat keeps answering the pump's registry handshake.
    for &p in &stream {
        assert!(!engine.submit(p).expect("engine is running").degraded());
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(60));

    let statuses = engine.slo_statuses();
    let tight = &statuses[0];
    assert_eq!(tight.id, "decision_p99_tight");
    assert!(
        tight.breaches >= 1,
        "impossible objective must breach (burn fast {})",
        tight.burn_fast
    );

    // The breach is a typed journal event in the merged history, tagged
    // with the breaching rule's index.
    let snapshot = engine.snapshot().expect("engine is running");
    assert!(
        snapshot
            .events
            .iter()
            .any(|e| matches!(e.event.kind, EventKind::SloBreach { rule: 0, .. })),
        "merged event history lacks the SloBreach for rule 0"
    );
    assert!(snapshot.slo.iter().any(|s| s.breaches >= 1));

    // The flight dump: served from memory, mirrored to disk, and carrying
    // both the breaching window's samples and the matching breach event.
    let ids = engine.flight_ids();
    assert!(!ids.is_empty(), "a breach must freeze a flight dump");
    let dump = engine
        .flight_dump(&ids[0])
        .expect("retained dump is served");
    assert!(dump.contains("\"trigger\": \"slo_breach:decision_p99_tight\""));
    assert!(
        dump.contains("\"latency_ns\""),
        "dump carries no decision samples from the breaching window"
    );
    assert!(
        dump.contains("\"kind\": \"slo_breach\""),
        "dump carries no matching SloBreach event"
    );
    assert!(
        dump.contains("\"window_ns\": 200000000"),
        "dump window must equal the rule's fast burn window"
    );
    let mirrored = std::fs::read_to_string(dump_dir.join(format!("{}.json", ids[0])))
        .expect("dump mirrored to disk");
    assert_eq!(mirrored, dump);

    let _ = engine.shutdown();
    let _ = std::fs::remove_dir_all(&dump_dir);
}

/// Serves `stream` through a fresh single-worker `RequestServer`.
fn server_decisions(
    history: &[Point],
    stream: &[Point],
    cfg: &SystemConfig,
) -> (Vec<Decision>, ESharing) {
    let mut system = ESharing::new(cfg.clone());
    system.bootstrap(history);
    let server = RequestServer::start(system);
    let handle = server.handle();
    let decisions = stream
        .iter()
        .map(|&p| handle.submit(p).expect("server is running"))
        .collect();
    (decisions, server.shutdown())
}

#[test]
fn health_plane_preserves_inline_drift_equivalence() {
    let history = uniform_points(500, 3_000.0, 81);
    let stream = uniform_points(2_000, 3_000.0, 82);
    let mut cfg = SystemConfig::default();
    cfg.deviation.drift_mode = DriftMode::Inline;
    let (expected, server_system) = server_decisions(&history, &stream, &cfg);

    let engine = Engine::start(
        &history,
        EngineConfig {
            shards: 1,
            partition: Partition::UniformGrid,
            decision_path: DecisionPath::SyncShared,
            system: cfg,
            health: HealthConfig::enabled(),
            ..EngineConfig::default()
        },
    );
    let got: Vec<Decision> = stream
        .iter()
        .map(|&p| match engine.submit(p).expect("engine is running") {
            EngineDecision::Served { shard, decision } => {
                assert_eq!(shard, 0);
                decision
            }
            EngineDecision::Degraded { .. } => {
                panic!("sequential submits must never overflow the pending queue")
            }
        })
        .collect();
    // The plane actually ran: the default rules report (green) verdicts.
    let statuses = engine.slo_statuses();
    assert_eq!(statuses.len(), 3, "default SLO rules must be loaded");
    assert!(statuses.iter().all(|s| !s.breached));

    let mut systems = engine.shutdown();
    assert_eq!(got, expected, "health plane perturbed the decision stream");
    let system = systems.pop().expect("one shard");
    assert_eq!(
        system.metrics().requests_served,
        server_system.metrics().requests_served
    );
    assert_eq!(
        system.metrics().placement,
        server_system.metrics().placement
    );
    assert_eq!(system.stations(), server_system.stations());
}
