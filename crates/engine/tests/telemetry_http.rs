//! End-to-end telemetry: a replay-driven engine scraped over HTTP while
//! the load is in flight, then reconciled against the final snapshot.

use esharing_engine::replay::{replay, ReplayConfig};
use esharing_engine::{Engine, EngineConfig, Partition};
use esharing_geo::Point;
use esharing_telemetry::http_get;
use std::net::SocketAddr;

fn history() -> Vec<Point> {
    (0..400)
        .map(|i| Point::new(((i * 41) % 1600) as f64, ((i * 17) % 1600) as f64))
        .collect()
}

fn stream(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(((i * 29) % 1600) as f64, ((i * 43) % 1600) as f64))
        .collect()
}

/// The value of an unlabelled (fleet-total) sample in Prometheus text.
fn prom_value(body: &str, family: &str) -> Option<f64> {
    body.lines().find_map(|l| {
        let mut parts = l.split_whitespace();
        if parts.next() != Some(family) {
            return None;
        }
        parts.next()?.parse().ok()
    })
}

#[test]
fn live_engine_scrapes_mid_flight_and_reconciles_with_snapshot() {
    let engine = Engine::start(
        &history(),
        EngineConfig {
            shards: 2,
            partition: Partition::UniformGrid,
            // Stretch the run so the mid-flight scrape reliably lands
            // while clients are still submitting.
            service_delay: std::time::Duration::from_micros(200),
            ..EngineConfig::default()
        },
    );
    let server = engine.serve_telemetry("127.0.0.1:0").expect("bind");
    let addr: SocketAddr = server.addr();

    // Scrape while the replay is running: the endpoint must answer 200
    // with the decision/shed/drift families present mid-flight.
    let destinations = stream(1500);
    let report = std::thread::scope(|scope| {
        let handle = scope.spawn(|| replay(&engine, &destinations, &ReplayConfig::default()));
        let mut saw_mid_flight = false;
        for _ in 0..50 {
            let (status, body) = http_get(addr, "/metrics").expect("mid-flight scrape");
            assert_eq!(status, 200);
            if !handle.is_finished() && body.contains("esharing_decisions_total") {
                assert!(body.contains("# TYPE esharing_decisions_total counter"));
                assert!(body.contains("esharing_sheds_total"));
                saw_mid_flight = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let report = handle.join().expect("replay");
        assert!(
            saw_mid_flight || report.served > 0,
            "never managed a mid-flight scrape"
        );
        report
    });
    assert_eq!(report.served + report.degraded, 1500);

    // Post-load: scraped totals must equal the final snapshot exactly.
    let snapshot = engine.snapshot().expect("snapshot");
    let (status, prom) = http_get(addr, "/metrics").expect("final scrape");
    assert_eq!(status, 200);
    let decisions = prom_value(&prom, "esharing_decisions_total").expect("decisions family");
    assert_eq!(decisions as u64, snapshot.metrics.requests_served);
    assert_eq!(decisions as u64, report.served);
    let sheds = prom_value(&prom, "esharing_sheds_total").unwrap_or(0.0);
    assert_eq!(sheds as u64, snapshot.shed_total);
    // Stage timing summaries are sampled but must exist with counts.
    assert!(prom.contains("esharing_decision_stage_ns"), "{prom}");
    assert!(prom.contains("esharing_decision_latency_ns_count"));
    // Parking-open events flow end to end: counter matches the snapshot
    // registry and the event log carries typed records.
    let opened = prom_value(&prom, "esharing_parkings_opened_total").expect("openings family");
    assert_eq!(
        opened as u64,
        snapshot
            .registry
            .counter_total("esharing_parkings_opened_total")
    );

    let (status, json) = http_get(addr, "/metrics.json").expect("json scrape");
    assert_eq!(status, 200);
    assert!(json.contains("\"esharing_decisions_total\""));

    let (status, events) = http_get(addr, "/events").expect("events scrape");
    assert_eq!(status, 200);
    assert!(events.contains("\"events\": ["));

    // The scrape endpoint answers 503 once the engine is gone, and the
    // responder itself stays up.
    drop(engine);
    let (status, _) = http_get(addr, "/metrics").expect("post-shutdown scrape");
    assert_eq!(status, 503);
    drop(server);
}
