//! The paper's online placement algorithm with deviation penalty
//! (Algorithm 2).
//!
//! The algorithm is guided by the offline solution computed on historical
//! (or predicted) data: the landmark set `P` and its size `k = |P|`.
//! For every streamed destination it measures the walking cost `c` to the
//! nearest established parking and opens a new parking there with
//! probability `min(g(c)·c / f, 1)`, where `g` is the active
//! [`PenaltyFunction`] keyed to the tolerance `L`. The decision-making
//! opening cost `f` starts small (`w*/k`, with `w*` half the minimum
//! landmark spacing, so early dynamics can adapt) and doubles every
//! `⌈β·k⌉` requests until opening is prohibitive. At every doubling the
//! algorithm re-runs **Peacock's 2-D KS test** between the historical
//! sample `H` and the recent request window `G` and switches the penalty
//! type per §V-C (very similar → II, similar → III, less similar → I).
//!
//! Two documented engineering choices where the paper under-specifies:
//!
//! 1. The counter `a` advances per *request* (pseudocode line 6), so `f`
//!    doubles every `⌈β·k⌉` requests.
//! 2. When the KS test reports a *less similar* regime (a distribution
//!    shift, Fig. 6(b)), the decision cost `f` resets to its initial value
//!    so the algorithm can establish parking in the newly active region;
//!    this realizes the paper's "once the data exhibits a significant
//!    divergence, the system could increase L and fit such shift" with the
//!    same mechanism that created the initial adaptivity.

use super::{Decision, OnlinePlacement};
use crate::penalty::{PenaltyFunction, PenaltyType, PolynomialPenalty};
use crate::PlacementCost;
use esharing_geo::{NearestNeighborIndex, Point, SpatialIndex};
use esharing_stats::ks2d::{
    DriftHistory, DriftMonitor, DriftSnapshot, Ks2dResult, SimilarityClass,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Observability events emitted by [`DeviationPenaltyCore`] as it runs.
///
/// The algorithm buffers at most [`EVENT_BUFFER_CAP`] undrained events
/// (newer ones are counted in
/// [`DeviationPenaltyCore::events_dropped`] instead of growing the
/// buffer), so an uninstrumented caller — the offline experiment binaries,
/// plain simulations — pays one bounded `Vec` and nothing per request.
/// Instrumented callers drain with [`DeviationPenaltyCore::take_events`]
/// after each handled request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementEvent {
    /// A new parking opened online.
    Opened {
        /// Where it opened (== the triggering destination).
        station: Point,
    },
    /// The cost-doubling schedule advanced.
    EpochCrossed {
        /// Doubling epochs completed since bootstrap (1-based).
        epoch: u64,
        /// The decision cost `f` after this doubling.
        decision_cost: f64,
    },
    /// A periodic 2-D KS re-test ran (it only runs once the live window
    /// has filled enough to be meaningful).
    KsTest {
        /// Peacock D-statistic between history `H` and live window `G`.
        d_statistic: f64,
        /// Similarity `100·(1 − D)` percent.
        similarity_percent: f64,
        /// Penalty type in force before the test.
        penalty_before: PenaltyType,
        /// Penalty type selected by the test.
        penalty_after: PenaltyType,
    },
    /// A deferred drift verdict committed ([`DriftMode::Deferred`] only):
    /// the re-test snapshotted one boundary ago took effect at this one.
    KsVerdictCommitted {
        /// Total requests handled when the verdict's snapshot was taken
        /// (the boundary request count).
        requests: u64,
        /// The committed Peacock D-statistic.
        d_statistic: f64,
    },
}

/// Undrained-event bound for [`PlacementEvent`] buffering.
pub const EVENT_BUFFER_CAP: usize = 64;

/// Per-stage wall-clock breakdown of one traced
/// [`DeviationPenaltyCore::handle_traced`] call. Stages follow the
/// decision path in order; their sum is the in-algorithm cost of the
/// request (mailbox wait and reply transit are measured by the serving
/// layer, not here).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HandleTrace {
    /// Sliding the live KS window + doubling counter, plus the periodic
    /// update (doubling, KS test, penalty switch) when one was due.
    pub ks_window_ns: u64,
    /// Nearest-established-parking lookup in the spatial index.
    pub nn_lookup_ns: u64,
    /// Penalty evaluation, the opening coin flip, and cost accounting.
    pub penalty_eval_ns: u64,
}

impl HandleTrace {
    /// Total traced nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.ks_window_ns + self.nn_lookup_ns + self.penalty_eval_ns
    }
}

/// When the boundary KS re-test runs relative to the decision path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftMode {
    /// Algorithm 2 as written: the re-test runs inside the doubling
    /// boundary's `handle` call and its penalty switch takes effect
    /// immediately. Retained as the reference oracle for the deferred
    /// protocol (and for bit-compatibility with the single-worker server).
    Inline,
    /// The re-test is split off the decision path: the boundary `handle`
    /// only *snapshots* the ranked window, the D-statistic is computed
    /// off-seat ([`DeviationPenaltyCore::take_drift_task`]), and the
    /// penalty transition commits at the *next* boundary — deterministic
    /// and replay-safe, because a verdict that was not computed in time is
    /// recomputed synchronously from the retained snapshot with an
    /// identical result.
    Deferred,
}

/// Configuration for [`DeviationPenalty`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationConfig {
    /// Accounting space-occupation cost per established parking
    /// (meters of equivalent walking distance; paper examples use 5 000 m).
    pub space_cost: f64,
    /// Cost-doubling period multiplier `β ≥ 1`: `f` doubles every
    /// `⌈β·k⌉` requests.
    pub beta: f64,
    /// Penalty tolerance `L` in meters (paper: 200 m).
    pub tolerance: f64,
    /// Initial penalty type (Algorithm 2 line 4 starts with Type II).
    pub initial_penalty: PenaltyType,
    /// Whether to run the periodic KS test and switch penalty types.
    pub auto_penalty: bool,
    /// Maximum number of recent destinations kept as the live sample `G`.
    pub ks_window: usize,
    /// Maximum number of historical points sampled into `H` (bounds the
    /// `O(n²)` KS cost).
    pub history_cap: usize,
    /// Overrides the initial decision-making opening cost. `None` uses
    /// Algorithm 2's `w*/k` (half the minimum landmark spacing divided by
    /// the landmark count) floored at the tolerance `L`, which bounds the
    /// warm-up opening probability at `max_c g(c)·c / L` (= 1/4 for
    /// Type II) so a long stream does not flood the field before the
    /// doubling catches up. An explicit value is useful when the landmark
    /// set is degenerate (a single landmark) or an experiment needs a
    /// fixed scale.
    pub initial_decision_cost: Option<f64>,
    /// A fitted polynomial penalty (the paper's §V-B future-work
    /// extension) that overrides the closed-form `g` when set. Only
    /// honoured with `auto_penalty` disabled — the KS switching rule is
    /// defined over the closed-form types.
    pub custom_penalty: Option<PolynomialPenalty>,
    /// When the boundary KS re-test runs (see [`DriftMode`]).
    pub drift_mode: DriftMode,
    /// RNG seed (the opening decision is stochastic).
    pub seed: u64,
}

impl Default for DeviationConfig {
    fn default() -> Self {
        DeviationConfig {
            space_cost: 5_000.0,
            beta: 1.0,
            tolerance: 200.0,
            initial_penalty: PenaltyType::TypeII,
            auto_penalty: true,
            ks_window: 200,
            history_cap: 300,
            initial_decision_cost: None,
            custom_penalty: None,
            drift_mode: DriftMode::Inline,
            seed: 42,
        }
    }
}

impl DeviationConfig {
    fn validate(&self) {
        assert!(
            self.space_cost.is_finite() && self.space_cost > 0.0,
            "space cost must be positive"
        );
        assert!(self.beta >= 1.0, "beta must be at least 1 (paper: β ≥ 1)");
        assert!(
            self.tolerance.is_finite() && self.tolerance > 0.0,
            "tolerance must be positive"
        );
        assert!(
            self.ks_window >= 10,
            "KS window must hold at least 10 points"
        );
        assert!(self.history_cap >= 10, "history cap must be at least 10");
    }
}

/// Algorithm 2: online parking placement with deviation penalty.
///
/// # Examples
///
/// ```
/// use esharing_geo::Point;
/// use esharing_placement::online::{DeviationConfig, DeviationPenalty, OnlinePlacement};
///
/// // Offline landmarks from the historical solution.
/// let landmarks = vec![Point::new(250.0, 250.0), Point::new(750.0, 750.0)];
/// let history: Vec<Point> = (0..100)
///     .map(|i| Point::new((i % 2) as f64 * 500.0 + 250.0, (i % 2) as f64 * 500.0 + 250.0))
///     .collect();
/// let mut alg = DeviationPenalty::new(landmarks, history, DeviationConfig::default());
/// let d = alg.handle(Point::new(251.0, 252.0));
/// assert!(!d.opened()); // a destination on a landmark never opens anew
/// ```
pub type DeviationPenalty = DeviationPenaltyCore<NearestNeighborIndex>;

/// A plain-old-data snapshot of the decision-path state, cheap to copy
/// and publish across threads (the sharded engine republishes one per
/// decision through a seqlock-style cell so monitoring reads never touch
/// the serving path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionView {
    /// Current decision-making opening cost `f`.
    pub decision_cost: f64,
    /// Penalty type in force.
    pub penalty: PenaltyType,
    /// Established parkings (landmarks + online additions).
    pub stations: usize,
    /// Stations opened online so far.
    pub opened_online: usize,
    /// Doubling epochs completed.
    pub epoch: u64,
    /// Points currently held in the live KS window `G`.
    pub window_len: usize,
    /// KS similarity percent at the last periodic test, if any ran.
    pub last_similarity: Option<f64>,
}

/// An off-seat evaluation job handed out by
/// [`DeviationPenaltyCore::take_drift_task`]: the immutable window
/// snapshot taken at a doubling boundary, ready to be evaluated on any
/// thread. Cloning shares the history by `Arc` and copies only the
/// window-sized snapshot vectors.
#[derive(Debug, Clone)]
pub struct DriftTask {
    epoch: u64,
    requests: u64,
    snapshot: DriftSnapshot,
}

impl DriftTask {
    /// The doubling epoch whose boundary produced this snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Runs the re-test. Pure and deterministic: every evaluation of this
    /// task (or of the snapshot the core retained) yields the same bits.
    pub fn evaluate(&self) -> DriftVerdict {
        DriftVerdict {
            epoch: self.epoch,
            requests: self.requests,
            result: self.snapshot.evaluate(),
        }
    }
}

/// The outcome of evaluating a [`DriftTask`], to be handed back via
/// [`DeviationPenaltyCore::commit_drift_verdict`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftVerdict {
    epoch: u64,
    requests: u64,
    result: Ks2dResult,
}

impl DriftVerdict {
    /// The doubling epoch whose boundary snapshot this verdict evaluates.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Checkpointed deferred-drift state: the snapshot taken at the last
/// doubling boundary (as its bare window points — the rank caches rebuild
/// deterministically) plus the off-seat verdict, if one had already been
/// committed back. Whether the evaluation job was handed out is *not*
/// carried: re-evaluation is pure, so a restored instance reconverges
/// bit-identically either way.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingDrift {
    /// The doubling epoch whose boundary produced the snapshot.
    pub epoch: u64,
    /// Total requests handled at that boundary.
    pub requests: u64,
    /// The snapshotted window points.
    pub window: Vec<Point>,
    /// The stored off-seat verdict, if one was committed before the
    /// checkpoint.
    pub verdict: Option<Ks2dResult>,
}

/// A complete, serializable image of a [`DeviationPenaltyCore`]'s mutable
/// state — everything [`DeviationPenaltyCore::restore`] needs to rebuild
/// an instance that makes bit-identical decisions from the next request
/// onward.
///
/// The spatial index is not stored structurally: `stations` is the
/// insertion-order log (the `k` offline landmarks first, then online
/// openings in opening order), and re-inserting it into a fresh index
/// reproduces the index exactly. Likewise the RNG is stored by position —
/// `(rng_seed, rng_draws)` — and restored by reseeding and discarding
/// `rng_draws` draws, so the checkpoint stays a flat plain-old-data
/// struct regardless of RNG internals.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationCheckpoint {
    /// Offline parking count `k` (absent removals, the first `k` entries
    /// of `stations` are the offline landmarks).
    pub k: u64,
    /// Active penalty type as its stable code ([`PenaltyType::code`]).
    pub penalty_kind: u8,
    /// Penalty tolerance `L` in force (meters).
    pub penalty_tolerance: f64,
    /// Current decision-making opening cost `f`.
    pub f_dec: f64,
    /// The initial opening cost (the shift-reset target).
    pub f_dec_initial: f64,
    /// Established stations in insertion order (landmarks then openings).
    pub stations: Vec<Point>,
    /// Accumulated walking cost.
    pub walking_cost: f64,
    /// Accumulated space cost.
    pub space_cost: f64,
    /// Stations opened online so far.
    pub opened_online: u64,
    /// RNG seed the instance was created with.
    pub rng_seed: u64,
    /// Opening coin flips drawn since seeding (the RNG position).
    pub rng_draws: u64,
    /// Requests since the last doubling.
    pub a: u64,
    /// The (already subsampled) historical KS sample `H`.
    pub history: Vec<Point>,
    /// The live KS window `G`, oldest first.
    pub window: Vec<Point>,
    /// KS similarity percent at the last periodic test, if any ran.
    pub last_similarity: Option<f64>,
    /// Consecutive *less similar* KS verdicts.
    pub shift_streak: u32,
    /// Doubling epochs completed.
    pub epoch: u64,
    /// Observability events discarded before the checkpoint (carried so
    /// monitoring counters survive a restore; the buffer itself is
    /// drained state and starts empty).
    pub events_dropped: u64,
    /// Deferred-drift state awaiting its commit boundary, if any
    /// ([`DriftMode::Deferred`]).
    pub pending: Option<PendingDrift>,
}

/// The request-path half of the algorithm: everything a single decision
/// reads *and writes* — the spatial index, the penalty function, the
/// opening cost, the RNG and the cost accumulators. Mutated on every
/// served request, so it must be owned by whichever thread is deciding.
#[derive(Debug)]
struct DecisionState<I: SpatialIndex> {
    /// Offline parking count `k = |P|`.
    k: usize,
    penalty: PenaltyFunction,
    /// Decision-making opening cost (doubles over time).
    f_dec: f64,
    f_dec_initial: f64,
    index: I,
    rng: StdRng,
    /// Opening coin flips drawn so far; with the seed this pins the RNG
    /// position, letting a checkpoint restore resume the exact stream.
    rng_draws: u64,
    cost: PlacementCost,
    opened_online: usize,
    /// Every established station in insertion order (landmarks first,
    /// then online openings). Re-inserting this log into a fresh index
    /// reproduces the index bit-identically, which is what makes
    /// [`DeviationPenaltyCore::restore`] exact.
    station_log: Vec<Point>,
}

/// Deferred-drift state between boundaries: the core retains the
/// authoritative snapshot, so a worker that never reports back (or reports
/// late, or a failover that loses the in-flight job) changes nothing — the
/// commit boundary falls back to evaluating the snapshot synchronously,
/// which is pure and yields the identical verdict.
#[derive(Debug)]
struct PendingDriftState {
    epoch: u64,
    /// Total requests handled at the snapshot boundary.
    requests: u64,
    snapshot: DriftSnapshot,
    /// The off-seat verdict, once committed back.
    verdict: Option<Ks2dResult>,
    /// Whether the evaluation job was handed out (at most once per
    /// boundary). Not checkpointed: a restored instance re-hands the job
    /// out, and re-evaluation is pure.
    task_taken: bool,
}

/// The monitor half: the KS drift machinery and the doubling schedule.
/// Touched once per arrival (window slide + counter) and in bulk at the
/// periodic update; never read by the decision math itself, which is what
/// lets a serving layer account it as a separate stage.
#[derive(Debug)]
struct MonitorState {
    /// Requests since the last doubling.
    a: usize,
    doubling_period: usize,
    /// Live sample `G` against the historical sample `H`: a FIFO window
    /// whose KS rank structures — including the history's quadrant counts
    /// around every stored point — are maintained incrementally, so the
    /// boundary re-test reuses the per-push work instead of recounting.
    /// The shared `H` rank structures live inside ([`DriftMonitor::history`]).
    window: DriftMonitor,
    last_similarity: Option<f64>,
    /// Consecutive periodic tests that reported a *less similar* regime;
    /// the decision-cost reset requires two in a row so one noisy window
    /// cannot flood the field with stations.
    shift_streak: u32,
    /// Doubling epochs completed.
    epoch: u64,
    /// The snapshot taken at the last boundary, awaiting its commit
    /// ([`DriftMode::Deferred`] only).
    pending: Option<PendingDriftState>,
}

/// [`DeviationPenalty`] generic over its nearest-parking index backend.
///
/// Production code uses the [`DeviationPenalty`] alias (the flat-hash-grid
/// [`NearestNeighborIndex`]); the decision-latency benchmark instantiates
/// the same algorithm over `NearestNeighborIndexReference` to measure what
/// the index engineering buys on the serving path.
///
/// Internally the state is split into the request-path [`DecisionState`]
/// and the monitor-path [`MonitorState`] (see their docs); the split keeps
/// the write sets of the two paths disjoint and gives serving layers a
/// copyable [`DecisionView`] to publish for lock-free monitoring reads.
#[derive(Debug)]
pub struct DeviationPenaltyCore<I: SpatialIndex> {
    cfg: DeviationConfig,
    decision: DecisionState<I>,
    monitor: MonitorState,
    /// Undrained observability events, bounded at [`EVENT_BUFFER_CAP`].
    events: Vec<PlacementEvent>,
    /// Events discarded because the buffer was full (nobody draining).
    events_dropped: u64,
}

impl<I: SpatialIndex> DeviationPenaltyCore<I> {
    /// Creates the algorithm from the offline landmark set and the
    /// historical destination sample `H` the landmarks were computed from.
    ///
    /// The landmarks are established immediately (each paying the space
    /// cost), mirroring the paper's examples where the reported space cost
    /// covers offline and online stations alike.
    ///
    /// # Panics
    ///
    /// Panics if `landmarks` is empty or the configuration is invalid.
    pub fn new(landmarks: Vec<Point>, history: Vec<Point>, cfg: DeviationConfig) -> Self {
        cfg.validate();
        assert!(!landmarks.is_empty(), "need at least one offline landmark");
        let k = landmarks.len();
        // w* = min pairwise landmark distance / 2; for a single landmark
        // fall back to the tolerance.
        let mut w_star = f64::INFINITY;
        for i in 0..k {
            for j in (i + 1)..k {
                let d = landmarks[i].distance(landmarks[j]);
                if d > 0.0 {
                    w_star = w_star.min(d / 2.0);
                }
            }
        }
        if !w_star.is_finite() {
            w_star = cfg.tolerance;
        }
        let f_dec_initial = cfg
            .initial_decision_cost
            .unwrap_or((w_star / k as f64).max(cfg.tolerance));
        assert!(
            f_dec_initial.is_finite() && f_dec_initial > 0.0,
            "initial decision cost must be positive"
        );
        let mut index = I::with_bucket_size(cfg.tolerance.max(50.0));
        let mut cost = PlacementCost::ZERO;
        for &p in &landmarks {
            index.insert(p);
            cost.space += cfg.space_cost;
        }
        let station_log = landmarks;
        // Subsample the history to bound the KS test cost, then rank it
        // once — the periodic tests reuse the sorted structures.
        let mut history = history;
        if history.len() > cfg.history_cap {
            let stride = history.len() as f64 / cfg.history_cap as f64;
            history = (0..cfg.history_cap)
                .map(|i| history[(i as f64 * stride) as usize])
                .collect();
        }
        let history = Arc::new(DriftHistory::new(&history));
        let doubling_period = ((cfg.beta * k as f64).ceil() as usize).max(1);
        DeviationPenaltyCore {
            decision: DecisionState {
                k,
                penalty: PenaltyFunction::new(cfg.initial_penalty, cfg.tolerance),
                f_dec: f_dec_initial,
                f_dec_initial,
                index,
                rng: StdRng::seed_from_u64(cfg.seed),
                rng_draws: 0,
                cost,
                opened_online: 0,
                station_log,
            },
            monitor: MonitorState {
                a: 0,
                doubling_period,
                window: DriftMonitor::new(history),
                last_similarity: None,
                shift_streak: 0,
                epoch: 0,
                pending: None,
            },
            events: Vec::with_capacity(EVENT_BUFFER_CAP),
            events_dropped: 0,
            cfg,
        }
    }

    /// The offline parking count `k` guiding the algorithm.
    pub fn k(&self) -> usize {
        self.decision.k
    }

    /// The currently active penalty type.
    pub fn penalty_kind(&self) -> PenaltyType {
        self.decision.penalty.kind()
    }

    /// The current decision-making opening cost.
    pub fn decision_cost(&self) -> f64 {
        self.decision.f_dec
    }

    /// Stations opened online (excluding the offline landmarks).
    pub fn opened_online(&self) -> usize {
        self.decision.opened_online
    }

    /// The KS similarity (percent) measured at the last periodic test, if
    /// any has run.
    pub fn last_similarity(&self) -> Option<f64> {
        self.monitor.last_similarity
    }

    /// Number of recent destinations currently held in the live KS window
    /// `G`. Read-only: probing it never perturbs the monitor state.
    pub fn window_len(&self) -> usize {
        self.monitor.window.len()
    }

    /// Doubling epochs completed since bootstrap.
    pub fn epoch(&self) -> u64 {
        self.monitor.epoch
    }

    /// A copyable snapshot of the observable decision/monitor state.
    ///
    /// Cheap (a handful of scalar loads), never perturbs any algorithm
    /// state, and safe to publish through a lock-free cell — this is what
    /// the sharded engine exposes for monitoring reads off the hot path.
    pub fn decision_view(&self) -> DecisionView {
        DecisionView {
            decision_cost: self.decision.f_dec,
            penalty: self.decision.penalty.kind(),
            stations: self.decision.index.len(),
            opened_online: self.decision.opened_online,
            epoch: self.monitor.epoch,
            window_len: self.monitor.window.len(),
            last_similarity: self.monitor.last_similarity,
        }
    }

    /// Moves every buffered [`PlacementEvent`] into `out`, oldest first.
    pub fn take_events(&mut self, out: &mut Vec<PlacementEvent>) {
        out.append(&mut self.events);
    }

    /// Events discarded because the buffer hit [`EVENT_BUFFER_CAP`]
    /// without being drained.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    fn emit(&mut self, event: PlacementEvent) {
        if self.events.len() < EVENT_BUFFER_CAP {
            self.events.push(event);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Removes a station (footnote 2: "when customers pick up all the
    /// E-bikes from a station … the station is removed from P"). The
    /// algorithm can re-establish it later from new requests. Returns
    /// whether the station existed. The space cost already paid is not
    /// refunded.
    pub fn remove_station(&mut self, station: Point) -> bool {
        let removed = self.decision.index.remove(station);
        if removed {
            // Keep the insertion log in sync so a later checkpoint carries
            // the surviving station set. (A restore re-inserts the log in
            // order; after removals the rebuilt index can differ in
            // internal layout from the original — the station *set* is
            // identical, but bit-exact restores are only guaranteed for
            // insert-only histories, which is all the serving engine uses.)
            if let Some(pos) = self.decision.station_log.iter().position(|&p| p == station) {
                self.decision.station_log.remove(pos);
            }
        }
        removed
    }

    /// Runs the periodic maintenance due every `⌈β·k⌉` requests: doubling
    /// `f`, plus — depending on [`DriftMode`] — either the inline KS
    /// re-test (Algorithm 2 as written) or the deferred snapshot/commit
    /// protocol (§12 of DESIGN.md): the verdict for the snapshot taken at
    /// boundary `N` commits here at boundary `N+1`, and a fresh snapshot
    /// is taken for the next one.
    fn periodic_update(&mut self) {
        self.monitor.a = 0;
        self.decision.f_dec *= 2.0;
        self.monitor.epoch += 1;
        let crossed = PlacementEvent::EpochCrossed {
            epoch: self.monitor.epoch,
            decision_cost: self.decision.f_dec,
        };
        self.emit(crossed);
        match self.cfg.drift_mode {
            DriftMode::Inline => {
                if !self.should_retest() {
                    return;
                }
                let test = self.monitor.window.evaluate_now();
                self.apply_test(test, None);
            }
            DriftMode::Deferred => {
                // Commit the verdict snapshotted one boundary ago. If the
                // off-seat worker never reported back, evaluate the
                // retained snapshot synchronously — pure, so the decision
                // stream is independent of worker timing.
                if let Some(pending) = self.monitor.pending.take() {
                    let result = pending
                        .verdict
                        .unwrap_or_else(|| pending.snapshot.evaluate());
                    self.apply_test(result, Some(pending.requests));
                }
                if self.should_retest() {
                    let requests = self.monitor.epoch * self.monitor.doubling_period as u64;
                    self.monitor.pending = Some(PendingDriftState {
                        epoch: self.monitor.epoch,
                        requests,
                        snapshot: self.monitor.window.snapshot(),
                        verdict: None,
                        task_taken: false,
                    });
                }
            }
        }
    }

    /// Whether a boundary re-test is worth running at all. The KS
    /// statistic on a handful of points is pure noise; wait for a
    /// reasonably filled window before drawing conclusions.
    fn should_retest(&self) -> bool {
        let min_window = (self.cfg.ks_window / 4).max(30);
        self.cfg.auto_penalty
            && !self.monitor.window.history().is_empty()
            && self.monitor.window.len() >= min_window
    }

    /// Applies one KS verdict: records similarity, switches the penalty
    /// type per §V-C, emits the events, and advances the shift-streak
    /// reset logic. `committed_requests` is `Some` when the verdict is a
    /// deferred commit (it carries the snapshot boundary's request count
    /// into the [`PlacementEvent::KsVerdictCommitted`] event).
    fn apply_test(&mut self, test: Ks2dResult, committed_requests: Option<u64>) {
        self.monitor.last_similarity = Some(test.similarity_percent);
        let class = SimilarityClass::from_test(&test);
        let penalty_before = self.decision.penalty.kind();
        self.decision.penalty = self
            .decision
            .penalty
            .with_kind(PenaltyType::for_similarity(class));
        let ks_event = PlacementEvent::KsTest {
            d_statistic: test.statistic,
            similarity_percent: test.similarity_percent,
            penalty_before,
            penalty_after: self.decision.penalty.kind(),
        };
        self.emit(ks_event);
        if let Some(requests) = committed_requests {
            self.emit(PlacementEvent::KsVerdictCommitted {
                requests,
                d_statistic: test.statistic,
            });
        }
        if class == SimilarityClass::LessSimilar {
            self.monitor.shift_streak += 1;
            // Distribution shift confirmed by two consecutive tests:
            // re-enable opening so the algorithm can follow the new demand
            // region (see module docs, choice 2). The reset fires once per
            // shift episode — while the divergence persists the cost
            // resumes its normal doubling, so the burst of new stations is
            // bounded by roughly one landmark-set's worth.
            if self.monitor.shift_streak == 2 {
                self.decision.f_dec = self.decision.f_dec_initial;
            }
        } else {
            self.monitor.shift_streak = 0;
        }
    }

    /// Hands out the pending boundary snapshot as an off-seat evaluation
    /// job, at most once per boundary ([`DriftMode::Deferred`] only).
    ///
    /// Returns `None` when there is nothing pending, the job was already
    /// handed out, or a verdict was already committed back. Purely an
    /// optimization hook: a caller that never takes (or never returns) the
    /// task changes nothing — the commit boundary falls back to a
    /// synchronous evaluation with the identical result.
    pub fn take_drift_task(&mut self) -> Option<DriftTask> {
        let pending = self.monitor.pending.as_mut()?;
        if pending.task_taken || pending.verdict.is_some() {
            return None;
        }
        pending.task_taken = true;
        Some(DriftTask {
            epoch: pending.epoch,
            requests: pending.requests,
            snapshot: pending.snapshot.clone(),
        })
    }

    /// Stores an off-seat verdict against the pending snapshot. Store-only:
    /// nothing takes effect until the next doubling boundary, which is what
    /// keeps the decision stream independent of worker timing. A verdict
    /// for a stale epoch (the boundary already committed via the
    /// synchronous fallback) is ignored.
    pub fn commit_drift_verdict(&mut self, verdict: DriftVerdict) {
        if let Some(pending) = self.monitor.pending.as_mut() {
            if pending.epoch == verdict.epoch && pending.verdict.is_none() {
                pending.verdict = Some(verdict.result);
            }
        }
    }

    /// Whether a boundary snapshot is awaiting its commit
    /// ([`DriftMode::Deferred`] only; always `false` inline).
    pub fn drift_pending(&self) -> bool {
        self.monitor.pending.is_some()
    }

    /// Monitor bookkeeping for one arrival: slides the live KS window `G`
    /// and advances the doubling counter. Returns whether the periodic
    /// update is due after this arrival.
    ///
    /// Kept separate from [`Self::decide`] so the monitor state is touched
    /// exactly once per served request — a read-only probe of the decision
    /// math can never perturb the window or the doubling schedule.
    fn record_arrival(&mut self, destination: Point) -> bool {
        if self.monitor.window.len() == self.cfg.ks_window {
            self.monitor.window.pop_front();
        }
        self.monitor.window.push_back(destination);
        self.monitor.a += 1;
        self.monitor.a >= self.monitor.doubling_period
    }

    /// The opening decision proper (Algorithm 2 lines 7–12): nearest
    /// established parking, penalty-weighted coin flip, cost accounting.
    fn decide(&mut self, destination: Point) -> Decision {
        let nearest = self.decision.index.nearest(destination);
        self.decide_from(destination, nearest)
    }

    /// Opens a parking at `destination`: index insert, space-cost
    /// accounting, event emission.
    fn open_at(&mut self, destination: Point) -> Decision {
        self.decision.index.insert(destination);
        self.decision.station_log.push(destination);
        self.decision.cost.space += self.cfg.space_cost;
        self.decision.opened_online += 1;
        self.emit(PlacementEvent::Opened {
            station: destination,
        });
        Decision::Opened {
            station: destination,
        }
    }

    /// Second half of [`Self::decide`], taking the index lookup result as
    /// input — split so [`Self::handle_traced`] can time the lookup and
    /// the penalty evaluation as separate stages while running the exact
    /// same operations.
    fn decide_from(&mut self, destination: Point, nearest: Option<(Point, f64)>) -> Decision {
        match nearest {
            None => {
                // All stations were removed; re-establish at the request.
                self.open_at(destination)
            }
            Some((nearest, c)) => {
                let g = match &self.cfg.custom_penalty {
                    Some(poly) if !self.cfg.auto_penalty => poly.g(c),
                    _ => self.decision.penalty.g(c),
                };
                let prob = (g * c / self.decision.f_dec).min(1.0);
                let opens = c > 0.0 && {
                    self.decision.rng_draws += 1;
                    self.decision.rng.gen_range(0.0..1.0) < prob
                };
                if opens {
                    self.open_at(destination)
                } else {
                    self.decision.cost.walking += c;
                    Decision::Assigned {
                        station: nearest,
                        walking: c,
                    }
                }
            }
        }
    }

    /// Captures a [`DeviationCheckpoint`] of the complete mutable state.
    ///
    /// Cheap relative to serving (three `Vec` clones of bounded size); the
    /// instance is untouched. [`Self::restore`] with the same
    /// [`DeviationConfig`] rebuilds an instance whose subsequent decisions
    /// are bit-identical to this one's.
    pub fn checkpoint(&self) -> DeviationCheckpoint {
        DeviationCheckpoint {
            k: self.decision.k as u64,
            penalty_kind: self.decision.penalty.kind().code(),
            penalty_tolerance: self.decision.penalty.tolerance(),
            f_dec: self.decision.f_dec,
            f_dec_initial: self.decision.f_dec_initial,
            stations: self.decision.station_log.clone(),
            walking_cost: self.decision.cost.walking,
            space_cost: self.decision.cost.space,
            opened_online: self.decision.opened_online as u64,
            rng_seed: self.cfg.seed,
            rng_draws: self.decision.rng_draws,
            a: self.monitor.a as u64,
            history: self.monitor.window.history().points().to_vec(),
            window: self.monitor.window.iter().collect(),
            last_similarity: self.monitor.last_similarity,
            shift_streak: self.monitor.shift_streak,
            epoch: self.monitor.epoch,
            events_dropped: self.events_dropped,
            pending: self.monitor.pending.as_ref().map(|p| PendingDrift {
                epoch: p.epoch,
                requests: p.requests,
                window: p.snapshot.points().collect(),
                verdict: p.verdict,
            }),
        }
    }

    /// Rebuilds an instance from a checkpoint.
    ///
    /// `cfg` supplies the non-checkpointed knobs (space cost, β, KS window
    /// size, …) and would normally be the config the checkpointed instance
    /// ran with; its `seed` is overwritten by the checkpoint's `rng_seed`
    /// so the restored RNG resumes the original stream (and so
    /// re-checkpointing round-trips exactly). The restored instance's next
    /// decisions are bit-identical to what the original would have made.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is internally inconsistent (no landmarks,
    /// fewer stations than `k`, an unknown penalty code, or non-positive
    /// costs) or if `cfg` is invalid.
    pub fn restore(ckpt: DeviationCheckpoint, mut cfg: DeviationConfig) -> Self {
        cfg.validate();
        cfg.seed = ckpt.rng_seed;
        // Note `stations` may hold fewer than `k` points (or none at all)
        // if stations were removed; the algorithm re-establishes from
        // requests, so that is restorable state too.
        let k = usize::try_from(ckpt.k).expect("checkpoint k overflows usize");
        assert!(k >= 1, "checkpoint must carry at least one landmark");
        let penalty_kind =
            PenaltyType::from_code(ckpt.penalty_kind).expect("unknown penalty code in checkpoint");
        // `f_dec` only ever doubles between drift resets, so a
        // long-running instance legitimately saturates it to `+inf`
        // (opening probability 0) — an absorbing state that round-trips
        // exactly. Only NaN / non-positive values are inconsistent.
        assert!(
            ckpt.f_dec > 0.0 && ckpt.f_dec_initial.is_finite() && ckpt.f_dec_initial > 0.0,
            "checkpoint decision costs must be positive"
        );
        let mut index = I::with_bucket_size(cfg.tolerance.max(50.0));
        for &p in &ckpt.stations {
            index.insert(p);
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        for _ in 0..ckpt.rng_draws {
            let _: f64 = rng.gen_range(0.0..1.0);
        }
        // Same bounding as `new()`: the checkpointed history is already
        // subsampled, so this only bites if the cap shrank across restore.
        let mut history = ckpt.history;
        if history.len() > cfg.history_cap {
            let stride = history.len() as f64 / cfg.history_cap as f64;
            history = (0..cfg.history_cap)
                .map(|i| history[(i as f64 * stride) as usize])
                .collect();
        }
        let history = Arc::new(DriftHistory::new(&history));
        let mut window = DriftMonitor::new(Arc::clone(&history));
        let skip = ckpt.window.len().saturating_sub(cfg.ks_window);
        for &p in &ckpt.window[skip..] {
            window.push_back(p);
        }
        // A restored pending snapshot rebuilds its rank caches from the
        // bare points — deterministic, so its evaluation (whether already
        // stored or recomputed at the commit boundary) is bit-identical to
        // the original's.
        let pending = ckpt.pending.map(|p| PendingDriftState {
            epoch: p.epoch,
            requests: p.requests,
            snapshot: DriftSnapshot::from_points(&history, &p.window),
            verdict: p.verdict,
            task_taken: false,
        });
        let doubling_period = ((cfg.beta * k as f64).ceil() as usize).max(1);
        DeviationPenaltyCore {
            decision: DecisionState {
                k,
                penalty: PenaltyFunction::new(penalty_kind, ckpt.penalty_tolerance),
                f_dec: ckpt.f_dec,
                f_dec_initial: ckpt.f_dec_initial,
                index,
                rng,
                rng_draws: ckpt.rng_draws,
                cost: PlacementCost::new(ckpt.walking_cost, ckpt.space_cost),
                opened_online: usize::try_from(ckpt.opened_online)
                    .expect("checkpoint opened_online overflows usize"),
                station_log: ckpt.stations,
            },
            monitor: MonitorState {
                a: usize::try_from(ckpt.a).expect("checkpoint counter overflows usize"),
                doubling_period,
                window,
                last_similarity: ckpt.last_similarity,
                shift_streak: ckpt.shift_streak,
                epoch: ckpt.epoch,
                pending,
            },
            events: Vec::with_capacity(EVENT_BUFFER_CAP),
            events_dropped: ckpt.events_dropped,
            cfg,
        }
    }

    /// [`OnlinePlacement::handle`] with a per-stage wall-clock breakdown.
    ///
    /// Runs the identical operations in the identical order as the
    /// untraced path — decisions and all algorithm state are bit-identical
    /// (asserted by `traced_handle_is_bit_identical`); the only extra work
    /// is a handful of monotonic clock reads, which is why the serving
    /// layers call this on a sampled subset of requests.
    pub fn handle_traced(&mut self, destination: Point) -> (Decision, HandleTrace) {
        fn since(t: Instant) -> u64 {
            t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
        }
        let mut trace = HandleTrace::default();
        let t0 = Instant::now();
        let due = self.record_arrival(destination);
        trace.ks_window_ns = since(t0);
        let t1 = Instant::now();
        let nearest = self.decision.index.nearest(destination);
        trace.nn_lookup_ns = since(t1);
        let t2 = Instant::now();
        let decision = self.decide_from(destination, nearest);
        trace.penalty_eval_ns = since(t2);
        if due {
            // The periodic KS re-test and penalty switch belong to the
            // monitor stage: they are the expensive tail of the window
            // bookkeeping, not of the per-request decision math.
            let t3 = Instant::now();
            self.periodic_update();
            trace.ks_window_ns += since(t3);
        }
        (decision, trace)
    }
}

impl<I: SpatialIndex> OnlinePlacement for DeviationPenaltyCore<I> {
    fn handle(&mut self, destination: Point) -> Decision {
        let due = self.record_arrival(destination);
        let decision = self.decide(destination);
        if due {
            self.periodic_update();
        }
        decision
    }

    fn stations(&self) -> Vec<Point> {
        self.decision.index.points()
    }

    fn cost(&self) -> PlacementCost {
        self.decision.cost
    }

    fn name(&self) -> String {
        "E-sharing (deviation penalty)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_stream(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    fn grid_landmarks() -> Vec<Point> {
        vec![
            Point::new(250.0, 250.0),
            Point::new(750.0, 250.0),
            Point::new(250.0, 750.0),
            Point::new(750.0, 750.0),
            Point::new(500.0, 500.0),
        ]
    }

    #[test]
    fn landmarks_pay_space_cost_upfront() {
        let alg = DeviationPenalty::new(grid_landmarks(), Vec::new(), DeviationConfig::default());
        assert_eq!(alg.cost().space, 5.0 * 5000.0);
        assert_eq!(alg.cost().walking, 0.0);
        assert_eq!(alg.stations().len(), 5);
        assert_eq!(alg.k(), 5);
    }

    #[test]
    fn request_on_landmark_never_opens() {
        let mut alg =
            DeviationPenalty::new(grid_landmarks(), Vec::new(), DeviationConfig::default());
        for _ in 0..100 {
            let d = alg.handle(Point::new(250.0, 250.0));
            assert!(!d.opened());
        }
        assert_eq!(alg.opened_online(), 0);
        assert_eq!(alg.cost().walking, 0.0);
    }

    #[test]
    fn decision_cost_doubles_every_beta_k_requests() {
        let mut alg = DeviationPenalty::new(
            grid_landmarks(),
            Vec::new(),
            DeviationConfig {
                auto_penalty: false,
                beta: 2.0,
                ..DeviationConfig::default()
            },
        );
        let f0 = alg.decision_cost();
        // β·k = 10 requests per doubling.
        for _ in 0..10 {
            alg.handle(Point::new(250.0, 250.0));
        }
        assert_eq!(alg.decision_cost(), 2.0 * f0);
        for _ in 0..10 {
            alg.handle(Point::new(250.0, 250.0));
        }
        assert_eq!(alg.decision_cost(), 4.0 * f0);
    }

    #[test]
    fn opens_fewer_stations_than_meyerson() {
        // The central claim (Table V): E-sharing establishes fewer stations
        // and lower total cost than Meyerson on the same stream.
        use crate::offline::jms_greedy;
        use crate::online::Meyerson;
        use crate::PlpInstance;
        let mut esharing_total = 0.0;
        let mut meyerson_total = 0.0;
        let mut esharing_stations = 0usize;
        let mut meyerson_stations = 0usize;
        for seed in 0..8 {
            let history = uniform_stream(100, 1000.0, 500 + seed);
            let inst = PlpInstance::with_uniform_cost(history.clone(), 5000.0);
            let offline = jms_greedy(&inst);
            let landmarks = offline.facility_points(&inst);
            let stream = uniform_stream(100, 1000.0, 900 + seed);

            let mut es = DeviationPenalty::new(
                landmarks,
                history,
                DeviationConfig {
                    seed,
                    ..DeviationConfig::default()
                },
            );
            let c1 = es.run(stream.iter().copied());
            esharing_total += c1.total();
            esharing_stations += es.stations().len();

            let mut me = Meyerson::new(5000.0, seed);
            let c2 = me.run(stream.iter().copied());
            meyerson_total += c2.total();
            meyerson_stations += me.stations().len();
        }
        assert!(
            esharing_total < meyerson_total,
            "E-sharing {esharing_total} vs Meyerson {meyerson_total}"
        );
        assert!(
            esharing_stations < meyerson_stations,
            "E-sharing {esharing_stations} stations vs Meyerson {meyerson_stations}"
        );
    }

    #[test]
    fn distribution_shift_opens_new_stations() {
        // Fig. 6(b): arrivals from an unknown distribution lead to new
        // online stations near the shifted demand.
        let history = uniform_stream(200, 400.0, 7); // demand in [0,400]^2
        let landmarks = vec![Point::new(150.0, 150.0), Point::new(300.0, 300.0)];
        let mut alg = DeviationPenalty::new(
            landmarks,
            history,
            DeviationConfig {
                seed: 3,
                ..DeviationConfig::default()
            },
        );
        // Warm up with in-distribution traffic (f grows).
        for p in uniform_stream(100, 400.0, 8) {
            alg.handle(p);
        }
        let stations_before = alg.stations().len();
        // Shift: demand jumps to a far corner.
        let shifted: Vec<Point> = uniform_stream(150, 300.0, 9)
            .into_iter()
            .map(|p| p + Point::new(2000.0, 2000.0))
            .collect();
        for p in shifted {
            alg.handle(p);
        }
        let new_stations: Vec<Point> = alg
            .stations()
            .into_iter()
            .filter(|p| p.x > 1500.0)
            .collect();
        assert!(
            !new_stations.is_empty(),
            "no stations followed the demand shift (had {stations_before})"
        );
        assert_eq!(alg.penalty_kind(), PenaltyType::TypeI);
        assert!(alg.last_similarity().unwrap() < 80.0);
    }

    #[test]
    fn similar_traffic_keeps_type_ii() {
        let history = uniform_stream(300, 1000.0, 11);
        let landmarks = grid_landmarks();
        let mut alg = DeviationPenalty::new(
            landmarks,
            history,
            DeviationConfig {
                seed: 5,
                ..DeviationConfig::default()
            },
        );
        for p in uniform_stream(300, 1000.0, 12) {
            alg.handle(p);
        }
        let sim = alg.last_similarity().unwrap();
        assert!(sim >= 80.0, "same-distribution similarity {sim}");
        assert_ne!(alg.penalty_kind(), PenaltyType::TypeI);
    }

    #[test]
    fn station_removal_and_reestablishment() {
        let landmarks = grid_landmarks();
        let mut alg =
            DeviationPenalty::new(landmarks.clone(), Vec::new(), DeviationConfig::default());
        for &p in &landmarks {
            assert!(alg.remove_station(p));
        }
        assert!(alg.stations().is_empty());
        assert!(!alg.remove_station(Point::new(1.0, 1.0)));
        // Next request re-establishes service.
        let d = alg.handle(Point::new(123.0, 456.0));
        assert!(d.opened());
        assert_eq!(alg.stations().len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let history = uniform_stream(100, 800.0, 13);
        let stream = uniform_stream(200, 800.0, 14);
        let run = || {
            let mut alg = DeviationPenalty::new(
                grid_landmarks(),
                history.clone(),
                DeviationConfig {
                    seed: 21,
                    ..DeviationConfig::default()
                },
            );
            alg.run(stream.iter().copied())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one offline landmark")]
    fn rejects_empty_landmarks() {
        let _ = DeviationPenalty::new(Vec::new(), Vec::new(), DeviationConfig::default());
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_beta_below_one() {
        let _ = DeviationPenalty::new(
            grid_landmarks(),
            Vec::new(),
            DeviationConfig {
                beta: 0.5,
                ..DeviationConfig::default()
            },
        );
    }

    #[test]
    fn traced_handle_is_bit_identical() {
        // The traced path must make the same decisions and leave the same
        // algorithm state as the untraced one — exact equality, including
        // the RNG stream and f64 cost sums.
        let history = uniform_stream(200, 900.0, 31);
        let stream = uniform_stream(400, 900.0, 32);
        let mk = || {
            DeviationPenalty::new(
                grid_landmarks(),
                history.clone(),
                DeviationConfig {
                    seed: 77,
                    ..DeviationConfig::default()
                },
            )
        };
        let mut plain = mk();
        let mut traced = mk();
        for (i, &p) in stream.iter().enumerate() {
            let d1 = plain.handle(p);
            // Interleave traced and untraced calls on the traced instance
            // the way a sampling server does.
            let d2 = if i % 3 == 0 {
                let (d, trace) = traced.handle_traced(p);
                let _ = trace.total_ns();
                d
            } else {
                traced.handle(p)
            };
            assert_eq!(d1, d2, "decision diverged at request {i}");
        }
        assert_eq!(plain.cost(), traced.cost());
        assert_eq!(plain.stations(), traced.stations());
        assert_eq!(plain.decision_cost(), traced.decision_cost());
        assert_eq!(plain.last_similarity(), traced.last_similarity());
        assert_eq!(plain.epoch(), traced.epoch());
    }

    #[test]
    fn events_report_openings_epochs_and_ks_tests() {
        let history = uniform_stream(200, 800.0, 41);
        let mut alg = DeviationPenalty::new(
            grid_landmarks(),
            history,
            DeviationConfig {
                seed: 43,
                ..DeviationConfig::default()
            },
        );
        let mut events = Vec::new();
        let mut opened_seen = 0usize;
        let mut last_epoch = 0u64;
        for p in uniform_stream(300, 800.0, 44) {
            let d = alg.handle(p);
            let before = events.len();
            alg.take_events(&mut events);
            // Draining every request keeps the buffer well under its cap.
            assert!(events.len() - before <= 3);
            for e in &events[before..] {
                match *e {
                    PlacementEvent::Opened { station } => {
                        opened_seen += 1;
                        assert_eq!(station, d.station());
                        assert!(d.opened());
                    }
                    PlacementEvent::EpochCrossed {
                        epoch,
                        decision_cost,
                    } => {
                        assert_eq!(epoch, last_epoch + 1);
                        last_epoch = epoch;
                        assert!(decision_cost > 0.0);
                    }
                    PlacementEvent::KsTest {
                        d_statistic,
                        similarity_percent,
                        ..
                    } => {
                        assert!((0.0..=1.0).contains(&d_statistic));
                        assert!((0.0..=100.0).contains(&similarity_percent));
                    }
                    PlacementEvent::KsVerdictCommitted { .. } => {
                        unreachable!("inline mode never emits deferred commits")
                    }
                }
            }
        }
        assert_eq!(opened_seen, alg.opened_online());
        assert_eq!(last_epoch, alg.epoch());
        // 300 requests / (β·k = 5) doublings happened.
        assert_eq!(alg.epoch(), 60);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, PlacementEvent::KsTest { .. })),
            "no KS test event over 300 requests"
        );
        assert_eq!(alg.events_dropped(), 0);
    }

    #[test]
    fn undrained_events_bounded_and_counted() {
        let history = uniform_stream(200, 800.0, 51);
        let mut alg = DeviationPenalty::new(
            grid_landmarks(),
            history,
            DeviationConfig {
                seed: 53,
                ..DeviationConfig::default()
            },
        );
        // Nobody drains: a long stream must not grow the buffer past its
        // cap, and the overflow must be visible.
        for p in uniform_stream(2_000, 800.0, 54) {
            alg.handle(p);
        }
        let mut events = Vec::new();
        alg.take_events(&mut events);
        assert_eq!(events.len(), EVENT_BUFFER_CAP);
        assert!(alg.events_dropped() > 0);
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let history = uniform_stream(200, 900.0, 61);
        let stream = uniform_stream(400, 900.0, 62);
        let cfg = DeviationConfig {
            seed: 99,
            ..DeviationConfig::default()
        };
        let mut alg = DeviationPenalty::new(grid_landmarks(), history, cfg.clone());
        let mut drained = Vec::new();
        for &p in &stream[..250] {
            alg.handle(p);
            alg.take_events(&mut drained);
        }
        let ckpt = alg.checkpoint();
        // Restore then re-checkpoint must round-trip exactly.
        let mut restored = DeviationPenalty::restore(ckpt.clone(), cfg);
        assert_eq!(restored.checkpoint(), ckpt);
        // And the restored instance must continue the original's exact
        // decision stream — RNG position, costs, KS schedule and all.
        for (i, &p) in stream[250..].iter().enumerate() {
            assert_eq!(alg.handle(p), restored.handle(p), "diverged at {i}");
            alg.take_events(&mut drained);
            restored.take_events(&mut drained);
        }
        assert_eq!(alg.cost(), restored.cost());
        assert_eq!(alg.stations(), restored.stations());
        assert_eq!(alg.decision_cost(), restored.decision_cost());
        assert_eq!(alg.last_similarity(), restored.last_similarity());
        assert_eq!(alg.epoch(), restored.epoch());
        assert_eq!(alg.checkpoint(), restored.checkpoint());
    }

    #[test]
    fn checkpoint_survives_station_removal() {
        // After a removal the log tracks the surviving set; a restore must
        // serve from exactly those stations.
        let landmarks = grid_landmarks();
        let mut alg =
            DeviationPenalty::new(landmarks.clone(), Vec::new(), DeviationConfig::default());
        assert!(alg.remove_station(landmarks[2]));
        let ckpt = alg.checkpoint();
        assert_eq!(ckpt.stations.len(), landmarks.len() - 1);
        let restored = DeviationPenalty::restore(ckpt, DeviationConfig::default());
        assert_eq!(restored.stations().len(), landmarks.len() - 1);
    }

    #[test]
    fn deferred_decisions_independent_of_worker_timing() {
        // The deferred protocol's whole point: whether (and when) an
        // off-seat worker evaluates the snapshot must not change a single
        // decision. Three schedules — never take the task (synchronous
        // fallback at the commit boundary), take + commit eagerly after
        // every request, and take but sit on the verdict for 7 requests —
        // must yield bit-identical streams and state.
        let history = uniform_stream(200, 900.0, 71);
        let stream = uniform_stream(500, 900.0, 72);
        let mk = || {
            DeviationPenalty::new(
                grid_landmarks(),
                history.clone(),
                DeviationConfig {
                    seed: 73,
                    drift_mode: DriftMode::Deferred,
                    ..DeviationConfig::default()
                },
            )
        };
        let mut lazy = mk();
        let mut eager = mk();
        let mut delayed = mk();
        let mut held: Option<(DriftVerdict, usize)> = None;
        for (i, &p) in stream.iter().enumerate() {
            let d1 = lazy.handle(p);
            let d2 = eager.handle(p);
            if let Some(task) = eager.take_drift_task() {
                eager.commit_drift_verdict(task.evaluate());
            }
            let d3 = delayed.handle(p);
            if let Some((verdict, due)) = held.take() {
                if i >= due {
                    delayed.commit_drift_verdict(verdict);
                } else {
                    held = Some((verdict, due));
                }
            }
            if held.is_none() {
                if let Some(task) = delayed.take_drift_task() {
                    held = Some((task.evaluate(), i + 7));
                }
            }
            assert_eq!(d1, d2, "eager diverged at request {i}");
            assert_eq!(d1, d3, "delayed diverged at request {i}");
        }
        assert_eq!(lazy.cost(), eager.cost());
        assert_eq!(lazy.cost(), delayed.cost());
        assert_eq!(lazy.stations(), eager.stations());
        assert_eq!(lazy.stations(), delayed.stations());
        assert_eq!(lazy.last_similarity(), eager.last_similarity());
        assert_eq!(lazy.last_similarity(), delayed.last_similarity());
        // Checkpoints agree on everything except the stored-verdict cache,
        // which legitimately tracks the worker schedule (lazy never stored
        // one); the decision-relevant state is identical.
        let strip = |mut c: DeviationCheckpoint| {
            if let Some(p) = c.pending.as_mut() {
                p.verdict = None;
            }
            c
        };
        assert_eq!(strip(lazy.checkpoint()), strip(eager.checkpoint()));
        assert_eq!(strip(lazy.checkpoint()), strip(delayed.checkpoint()));
    }

    #[test]
    fn deferred_commits_lag_inline_by_one_boundary() {
        // Over a long same-distribution stream the deferred run's
        // committed verdicts are exactly the inline run's verdicts shifted
        // one boundary later: verdict requests counts line up with the
        // snapshot boundaries, and every commit carries a D from a real
        // test. Also exercises the event plumbing end to end.
        let history = uniform_stream(300, 1000.0, 81);
        let stream = uniform_stream(400, 1000.0, 82);
        let mut alg = DeviationPenalty::new(
            grid_landmarks(),
            history,
            DeviationConfig {
                seed: 83,
                drift_mode: DriftMode::Deferred,
                ..DeviationConfig::default()
            },
        );
        let mut events = Vec::new();
        for &p in &stream {
            alg.handle(p);
            alg.take_events(&mut events);
        }
        let commits: Vec<(u64, f64)> = events
            .iter()
            .filter_map(|e| match *e {
                PlacementEvent::KsVerdictCommitted {
                    requests,
                    d_statistic,
                } => Some((requests, d_statistic)),
                _ => None,
            })
            .collect();
        assert!(!commits.is_empty(), "no deferred commits over 400 requests");
        let period = 5; // β·k with the 5 grid landmarks
        for &(requests, d) in &commits {
            assert_eq!(requests % period, 0, "commit off the boundary grid");
            assert!((0.0..=1.0).contains(&d));
        }
        // Each commit belongs to the boundary before the one it fired at,
        // so the last commit's request count is below the stream length.
        assert!(commits.last().unwrap().0 <= stream.len() as u64 - period);
    }

    #[test]
    fn deferred_checkpoint_round_trips_pending_state() {
        // Kill-and-restore between a snapshot and its commit: the restored
        // instance must round-trip the checkpoint exactly and continue the
        // original's decision stream, whether or not a verdict had already
        // been stored — and even if the original's in-flight task is lost.
        let history = uniform_stream(200, 900.0, 91);
        let stream = uniform_stream(400, 900.0, 92);
        let cfg = DeviationConfig {
            seed: 93,
            drift_mode: DriftMode::Deferred,
            ..DeviationConfig::default()
        };
        for store_verdict in [false, true] {
            let mut alg = DeviationPenalty::new(grid_landmarks(), history.clone(), cfg.clone());
            let mut drained = Vec::new();
            // 103 requests = past the 100-request boundary (β·k = 5), with
            // a window (≥ 30 points) old enough that a snapshot is pending.
            for &p in &stream[..103] {
                alg.handle(p);
                alg.take_events(&mut drained);
            }
            assert!(alg.drift_pending(), "no pending snapshot at request 103");
            let task = alg.take_drift_task().expect("task should be available");
            if store_verdict {
                alg.commit_drift_verdict(task.evaluate());
                // Once a verdict is stored the task is no longer offered.
                assert!(alg.take_drift_task().is_none());
            }
            let ckpt = alg.checkpoint();
            assert_eq!(
                ckpt.pending.as_ref().unwrap().verdict.is_some(),
                store_verdict
            );
            let mut restored = DeviationPenalty::restore(ckpt.clone(), cfg.clone());
            assert_eq!(restored.checkpoint(), ckpt);
            // The restored instance re-offers the evaluation job (the
            // in-flight hand-out is deliberately not checkpointed)…
            assert_eq!(restored.take_drift_task().is_some(), !store_verdict);
            // …and reconverges bit-identically without any worker help.
            for (i, &p) in stream[103..].iter().enumerate() {
                assert_eq!(alg.handle(p), restored.handle(p), "diverged at {i}");
                alg.take_events(&mut drained);
                restored.take_events(&mut drained);
            }
            assert_eq!(alg.checkpoint(), restored.checkpoint());
        }
    }

    #[test]
    fn stale_drift_verdict_is_ignored() {
        // A worker reporting after the commit boundary already fell back
        // to the synchronous evaluation must not poison the next epoch.
        let history = uniform_stream(200, 900.0, 95);
        let stream = uniform_stream(300, 900.0, 96);
        let mk = || {
            DeviationPenalty::new(
                grid_landmarks(),
                history.clone(),
                DeviationConfig {
                    seed: 97,
                    drift_mode: DriftMode::Deferred,
                    ..DeviationConfig::default()
                },
            )
        };
        let mut clean = mk();
        let mut noisy = mk();
        let mut held: Vec<(DriftVerdict, usize)> = Vec::new();
        for (i, &p) in stream.iter().enumerate() {
            assert_eq!(clean.handle(p), noisy.handle(p), "diverged at {i}");
            // Take every task but report each verdict 12 requests later —
            // past its own commit boundary (period β·k = 5), by which time
            // the pending snapshot belongs to a newer epoch and the late
            // commit must be dropped on the floor.
            if let Some(task) = noisy.take_drift_task() {
                held.push((task.evaluate(), i + 12));
            }
            held.retain(|&(verdict, due)| {
                if i >= due {
                    noisy.commit_drift_verdict(verdict);
                    false
                } else {
                    true
                }
            });
        }
        assert_eq!(clean.cost(), noisy.cost());
        assert_eq!(clean.checkpoint(), noisy.checkpoint());
    }

    #[test]
    fn cost_accounting_consistent() {
        let history = uniform_stream(100, 600.0, 15);
        let mut alg = DeviationPenalty::new(
            grid_landmarks(),
            history,
            DeviationConfig {
                seed: 17,
                ..DeviationConfig::default()
            },
        );
        let mut expected = alg.cost();
        for p in uniform_stream(150, 600.0, 16) {
            match alg.handle(p) {
                Decision::Opened { .. } => expected.space += 5000.0,
                Decision::Assigned { walking, .. } => expected.walking += walking,
            }
        }
        assert_eq!(alg.cost(), expected);
        assert_eq!(alg.stations().len(), alg.k() + alg.opened_online());
    }
}
