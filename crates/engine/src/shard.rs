//! One shard: a worker thread owning an independent [`ESharing`] instance.
//!
//! Each shard is the single-worker request server of `esharing-core`
//! re-instantiated for one zone of the city: it owns its own offline
//! landmark solution, its own deviation-penalty online placement state,
//! and its own `RankedSample` KS drift monitor (inside the
//! [`DeviationPenalty`](esharing_placement::online::DeviationPenalty) the
//! orchestrator arms at bootstrap). Commands arrive over a **bounded**
//! mailbox — the queue depth is the engine's backpressure signal: the
//! router sheds load once it fills instead of letting submitters block.
//!
//! Each worker also owns a [`WorkerTelemetry`]: exact counters and the
//! event journal update on every decision, per-stage tracing runs on the
//! sampled requests, and a [`Command::Snapshot`] probe carries the
//! registry snapshot plus drained journal back to the aggregator.

use crate::checkpoint::encode_checkpoint;
use crate::fastpath::{DownstreamRing, DriftSlot};
use crate::health::HealthHandle;
use crossbeam::channel::{Receiver, Sender};
use esharing_core::server::ServerSnapshot;
use esharing_core::{
    ESharing, LatencyHistogram, ServeTrace, SystemMetrics, TelemetryProbe, WorkerTelemetry,
};
use esharing_geo::Point;
use esharing_placement::online::Decision;
use esharing_telemetry::{EventJournal, EventKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Commands a shard worker serves, in strict arrival order.
pub(crate) enum Command {
    /// One trip destination. `reply: None` is fire-and-forget (the load
    /// generator's asynchronous mode); the decision still lands in the
    /// shard metrics. `arrival` is stamped by the router at submit time:
    /// the emulated downstream pipe cannot start a request's fetch before
    /// the request existed.
    Request {
        destination: Point,
        reply: Option<Sender<Decision>>,
        arrival: Instant,
    },
    /// A router-grouped sub-batch: every destination already routes to
    /// this shard, in the submitter's order. One mailbox slot, one reply
    /// carrying the decisions in input order. Each item still occupies the
    /// emulated downstream pipe for a full `service_delay`, exactly as if
    /// it had arrived as its own [`Command::Request`].
    Batch {
        destinations: Vec<Point>,
        reply: Sender<Vec<Decision>>,
        arrival: Instant,
    },
    /// State probe.
    Snapshot { reply: Sender<WorkerState> },
    /// Lifecycle checkpoint probe: the worker encodes its full
    /// [`ShardCheckpoint`](crate::ShardCheckpoint) between retires (the
    /// state is quiescent there) and replies with the image plus the WAL
    /// high-water sequence it covers.
    Checkpoint { reply: Sender<(Vec<u8>, u64)> },
    /// Drain and stop.
    Shutdown,
}

/// A worker's reply to a snapshot probe (the engine aggregator decorates
/// it with router-side data — shard id, anchor, shed count).
#[derive(Debug, Clone)]
pub(crate) struct WorkerState {
    pub server: ServerSnapshot,
    pub metrics: SystemMetrics,
    pub last_similarity: Option<f64>,
    /// Registry snapshot + drained journal; `None` when the engine runs
    /// with telemetry disabled.
    pub telemetry: Option<TelemetryProbe>,
}

/// Spawns the drain worker of a fast-path shard: the only thread-side
/// work left once decisions run inline on the caller, which is emulating
/// the downstream FIFO pipe for every accepted request.
///
/// The worker peeks the oldest ring job, sleeps until its fetch completes
/// at `max(pipe_free, arrival) + service_delay` (the same deterministic
/// single-server queue the mailbox worker models), and only **then**
/// frees the slot — so the ring occupancy the router sheds against counts
/// queued *and* in-fetch jobs, exactly like the mailbox depth used to.
///
/// Harvesting is deliberately coarse: the pipe schedule (`pipe_free_ns`)
/// is pure arithmetic over arrival stamps, so *when* the worker wakes
/// never moves a fetch's completion time — it only delays freeing the
/// slot. The worker therefore sleeps in quanta of at least
/// [`HARVEST_QUANTUM`], then batch-advances every job already matured.
/// On a host with fewer cores than shards this is the difference between
/// one scheduler wake-up per job and one per quantum; the clients doing
/// inline decisions keep the CPU instead of the drain fleet.
///
/// An empty ring backs the worker off in three stages (spin → yield →
/// sleep), keeping the idle fleet cheap without adding latency to a busy
/// shard. The worker exits once `stop` is set *and* the ring has drained,
/// so shutdown never strands a pending job.
///
/// The worker doubles as the shard's off-seat KS evaluator: when the seat
/// offers a boundary re-test through `drift` (deferred drift mode), the
/// worker runs the Peacock evaluation between ring harvests — against the
/// immutable boundary snapshot, never touching the seat — and deposits
/// the timed verdict for the seat to commit at the next boundary.
///
/// With the health plane enabled the worker is also the shard's tsdb
/// pump: every sweep quantum it harvests the shard-local scalars (ring
/// occupancy, shed and decision counters from the [`HealthSlot`]
/// handshake), collects any registry snapshot the seat deposited for the
/// *previous* request, re-raises the request flag, and feeds it all into
/// the plane — so the store fills on drain-worker time and the seat never
/// blocks on observability.
pub(crate) fn spawn_fast(
    ring: Arc<DownstreamRing>,
    stop: Arc<AtomicBool>,
    drift: Arc<DriftSlot>,
    service_delay: Duration,
    epoch: Instant,
    health: Option<HealthHandle>,
) -> JoinHandle<()> {
    /// Minimum drain sleep: bounds ring-occupancy staleness (a matured
    /// job can linger in a slot this long) while capping each worker at
    /// ~1k wake-ups/s regardless of `service_delay`.
    const HARVEST_QUANTUM_NS: u64 = 1_000_000;
    std::thread::spawn(move || {
        let delay_ns = service_delay.as_nanos().min(u128::from(u64::MAX)) as u64;
        // When the emulated pipe finishes its current fetch, in
        // nanoseconds since the engine epoch.
        let mut pipe_free_ns = 0u64;
        let mut idle = 0u32;
        let mut next_sweep_ns = 0u64;
        loop {
            if let Some(h) = &health {
                let now = elapsed_ns(epoch);
                if now >= next_sweep_ns {
                    next_sweep_ns = now + h.plane.sweep_interval_ns();
                    // One-sweep-lag handshake: harvest the snapshot the
                    // seat deposited for the previous request, then ask
                    // for a fresh one before the next sweep matures.
                    let snap = h.slot.take_registry();
                    h.slot.request_registry();
                    h.plane.sweep(
                        now,
                        h.shard,
                        ring.occupancy(),
                        h.slot.sheds(),
                        h.slot.decisions(),
                        snap,
                    );
                }
            }
            if let Some(task) = drift.take_task() {
                let t0 = Instant::now();
                let verdict = task.evaluate();
                drift.deposit(verdict, elapsed_ns(t0));
                idle = 0;
            }
            match ring.peek() {
                Some(arrival_ns) => {
                    idle = 0;
                    let due = pipe_free_ns.max(arrival_ns) + delay_ns;
                    pipe_free_ns = due;
                    if delay_ns > 0 {
                        let now = elapsed_ns(epoch);
                        if due > now {
                            let wait = (due - now).max(HARVEST_QUANTUM_NS);
                            std::thread::sleep(Duration::from_nanos(wait));
                        }
                    }
                    ring.advance();
                }
                None => {
                    if stop.load(Ordering::Acquire) && ring.is_empty() {
                        break;
                    }
                    idle = idle.saturating_add(1);
                    if idle < 16 {
                        std::hint::spin_loop();
                    } else if idle < 32 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_nanos(HARVEST_QUANTUM_NS));
                    }
                }
            }
        }
    })
}

/// A request whose emulated downstream fetch (`service_delay`) is in
/// flight: its fetch completes at `due`, and the worker's CPU is free to
/// retire the previous request inside that window.
struct InFetch {
    destination: Point,
    reply: Option<Sender<Decision>>,
    due: Instant,
    arrival: Instant,
    /// `Some(queue wait)` when this request drew the trace sample at admit
    /// time; it then retires through the traced decision path.
    mailbox_wait_ns: Option<u64>,
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Runs a pending deferred KS re-test, if the just-retired request crossed
/// a doubling boundary. The mailbox worker owns its system outright, so
/// "off-seat" here means *after the reply was sent*: the boundary request
/// itself never pays the O(window²) Peacock evaluation, the worker runs it
/// in the gap before the next command and stores the verdict for the
/// commit boundary.
fn run_deferred_retest(system: &mut ESharing, telemetry: &mut Option<WorkerTelemetry>) {
    if let Some(task) = system.take_drift_task() {
        let t0 = Instant::now();
        let verdict = task.evaluate();
        let eval_ns = elapsed_ns(t0);
        system.commit_drift_verdict(verdict);
        if let Some(t) = telemetry.as_mut() {
            t.observe_deferred_retest(eval_ns);
        }
    }
}

/// Spawns the worker thread for one shard. `service_delay` emulates
/// per-request downstream latency (see `EngineConfig::service_delay`).
///
/// The emulated downstream is a FIFO pipe with deterministic service time
/// `service_delay` per request — the textbook single-server queue. A
/// request's fetch is issued at `max(pipe_free, arrival)` and completes
/// `service_delay` later, so queued requests issue back-to-back exactly
/// like ops on a busy real connection; the worker thread's own scheduling
/// jitter delays only the harvest (reply latency), never the pipe's
/// schedule. This is the architectural contrast with the single-worker
/// `RequestServer`, which blocks its only thread on each downstream call
/// and therefore pays wake-up latency and decision compute serially per
/// request.
///
/// The loop is a two-stage software pipeline: at most one request sits in
/// its fetch stage, and the previous request's decision is computed inside
/// that window, so the shard's CPU work hides behind the delay instead of
/// adding to it. A request is always retired before any command that
/// arrived after it is acted on, so decisions — and every shard state
/// update — happen in strict arrival order, exactly as in the unpipelined
/// single-worker server.
///
/// `inflight` mirrors the mailbox depth in commands: the router increments
/// it before `try_send`, the worker decrements on dequeue, and the
/// router reads it at shed time to journal the queue depth it collided
/// with.
pub(crate) fn spawn(
    mut system: ESharing,
    rx: Receiver<Command>,
    service_delay: Duration,
    mut telemetry: Option<WorkerTelemetry>,
    inflight: Arc<AtomicU64>,
    wal: Option<Arc<Mutex<EventJournal>>>,
    // Arrival → decision latency of every request this shard retires;
    // passed in (instead of created here) so a recovered shard resumes
    // its checkpointed histogram.
    mut latency: LatencyHistogram,
) -> JoinHandle<ESharing> {
    std::thread::spawn(move || {
        // When the emulated downstream pipe finishes its current fetch.
        let mut pipe_free = Instant::now();
        let mut in_fetch: Option<InFetch> = None;
        loop {
            // Stage 1: wait for the in-fetch request's completion time.
            if let Some(f) = &in_fetch {
                let now = Instant::now();
                if f.due > now {
                    std::thread::sleep(f.due - now);
                }
            }
            // Admit the next command before retiring, so a queued
            // request's fetch issues as early as possible. Block only
            // when the pipeline is empty; `None` means disconnected.
            let next = if in_fetch.is_some() {
                match rx.try_recv() {
                    Ok(cmd) => Some(Some(cmd)),
                    Err(crossbeam::channel::TryRecvError::Empty) => Some(None),
                    Err(crossbeam::channel::TryRecvError::Disconnected) => None,
                }
            } else {
                match rx.recv() {
                    Ok(cmd) => Some(Some(cmd)),
                    Err(_) => None,
                }
            };
            // Stage 2: retire the matured request (decision + reply).
            if let Some(f) = in_fetch.take() {
                let (decision, trace) = match f.mailbox_wait_ns {
                    Some(wait_ns) => {
                        let (d, tr) = system
                            .handle_request_traced(f.destination)
                            .expect("shard systems are bootstrapped at engine start");
                        (d, Some(ServeTrace::mailbox(wait_ns, tr)))
                    }
                    None => (
                        system
                            .handle_request(f.destination)
                            .expect("shard systems are bootstrapped at engine start"),
                        None,
                    ),
                };
                // WAL order is retire order — the order the state
                // absorbed the request — so checkpoint + suffix replay
                // reproduces this shard exactly.
                if let Some(wal) = &wal {
                    wal.lock()
                        .expect("wal not poisoned")
                        .record(EventKind::RequestAdmitted {
                            x: f.destination.x,
                            y: f.destination.y,
                        });
                }
                let latency_ns = elapsed_ns(f.arrival);
                latency.record_ns(latency_ns);
                if let Some(t) = telemetry.as_mut() {
                    t.on_decision(&mut system, &decision, latency_ns, trace);
                }
                if let Some(reply) = f.reply {
                    // A dropped reply receiver means the client gave up.
                    let _ = reply.send(decision);
                }
                run_deferred_retest(&mut system, &mut telemetry);
            }
            match next {
                None => break,
                Some(None) => {}
                Some(Some(Command::Request {
                    destination,
                    reply,
                    arrival,
                })) => {
                    inflight.fetch_sub(1, Ordering::Relaxed);
                    // Sample the trace decision at admit time, where the
                    // queue wait (arrival → dequeue) is observable.
                    let mailbox_wait_ns = telemetry
                        .as_mut()
                        .and_then(|t| t.should_trace().then(|| elapsed_ns(arrival)));
                    // The pipe starts this fetch the instant it is free —
                    // or at arrival, if it sat idle.
                    let due = pipe_free.max(arrival) + service_delay;
                    pipe_free = due;
                    in_fetch = Some(InFetch {
                        destination,
                        reply,
                        due,
                        arrival,
                        mailbox_wait_ns,
                    });
                }
                Some(Some(Command::Batch {
                    destinations,
                    reply,
                    arrival,
                })) => {
                    inflight.fetch_sub(1, Ordering::Relaxed);
                    // One queue wait for the whole sub-batch: it crossed
                    // the mailbox as one command.
                    let batch_wait_ns = elapsed_ns(arrival);
                    // Every item runs through the same pipe schedule it
                    // would have seen as an individual request: fetches
                    // issue back-to-back, decisions retire in order. The
                    // pipeline register stays empty across a batch — the
                    // in-fetch request (if any) was retired above, before
                    // this command was acted on.
                    let mut decisions = Vec::with_capacity(destinations.len());
                    for destination in destinations {
                        let due = pipe_free.max(arrival) + service_delay;
                        pipe_free = due;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let traced = telemetry.as_mut().is_some_and(|t| t.should_trace());
                        let (decision, trace) = if traced {
                            let (d, tr) = system
                                .handle_request_traced(destination)
                                .expect("shard systems are bootstrapped at engine start");
                            (d, Some(ServeTrace::mailbox(batch_wait_ns, tr)))
                        } else {
                            (
                                system
                                    .handle_request(destination)
                                    .expect("shard systems are bootstrapped at engine start"),
                                None,
                            )
                        };
                        if let Some(wal) = &wal {
                            wal.lock().expect("wal not poisoned").record(
                                EventKind::RequestAdmitted {
                                    x: destination.x,
                                    y: destination.y,
                                },
                            );
                        }
                        let latency_ns = elapsed_ns(arrival);
                        latency.record_ns(latency_ns);
                        if let Some(t) = telemetry.as_mut() {
                            t.on_decision(&mut system, &decision, latency_ns, trace);
                        }
                        run_deferred_retest(&mut system, &mut telemetry);
                        decisions.push(decision);
                    }
                    let _ = reply.send(decisions);
                }
                Some(Some(Command::Snapshot { reply })) => {
                    let probe = telemetry.as_mut().map(|t| {
                        // Tier-2 maintenance runs outside the request
                        // path; reconcile its dispatch counter at probe
                        // time.
                        t.observe_maintenance(system.metrics());
                        t.probe()
                    });
                    let _ = reply.send(WorkerState {
                        server: ServerSnapshot {
                            stations: system.stations(),
                            placement: system.metrics().placement,
                            requests_served: system.metrics().requests_served,
                            latency: latency.clone(),
                        },
                        metrics: *system.metrics(),
                        last_similarity: system.last_similarity(),
                        telemetry: probe,
                    });
                }
                Some(Some(Command::Checkpoint { reply })) => {
                    // Between retires the system is quiescent: every WAL
                    // entry below the journal head is reflected in the
                    // state, so the image's high-water mark is exact.
                    let high_water = wal
                        .as_ref()
                        .map_or(0, |w| w.lock().expect("wal not poisoned").total_recorded());
                    // The epochal re-optimization loop (like split/merge)
                    // runs only on the SyncShared path, so a mailbox
                    // shard's landmark provenance is always the bootstrap.
                    let bytes = encode_checkpoint(&system, &latency, high_water, 0, 0)
                        .expect("shard systems are bootstrapped at engine start");
                    let _ = reply.send((bytes, high_water));
                }
                Some(Some(Command::Shutdown)) => break,
            }
        }
        system
    })
}
