//! The two-tier orchestrator.

use crate::{SystemConfig, SystemMetrics};
use esharing_charging::{
    IncentiveMechanism, IncentiveOutcome, Operator, ShiftReport, StationEnergy,
};
use esharing_dataset::Fleet;
use esharing_geo::{Grid, Point};
use esharing_placement::online::{
    Decision, DecisionView, DeviationCheckpoint, DeviationPenalty, DriftTask, DriftVerdict,
    HandleTrace, OnlinePlacement, PlacementEvent,
};
use esharing_placement::{offline, PlpInstance};
use std::error::Error;
use std::fmt;

/// Error returned when the orchestrator is used before bootstrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotBootstrapped;

impl fmt::Display for NotBootstrapped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E-Sharing must be bootstrapped with historical data first"
        )
    }
}

impl Error for NotBootstrapped {}

/// A complete image of a bootstrapped [`ESharing`]'s mutable state: the
/// landmark set, the accumulated metrics, and the online algorithm's
/// [`DeviationCheckpoint`]. Together with the [`SystemConfig`] the system
/// ran under, [`ESharing::restore`] rebuilds an instance whose subsequent
/// decisions are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemCheckpoint {
    /// Offline landmark stations.
    pub landmarks: Vec<Point>,
    /// Accumulated system metrics at checkpoint time.
    pub metrics: SystemMetrics,
    /// The online algorithm's full state image.
    pub deviation: DeviationCheckpoint,
}

/// Report of one Tier-2 maintenance period.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceReport {
    /// The incentive pass outcome.
    pub incentives: IncentiveOutcome,
    /// The operator shift that followed.
    pub shift: ShiftReport,
    /// Total monetary cost: tour + incentives.
    pub total_cost: f64,
}

/// The E-Sharing system: offline-guided online placement (Tier 1) plus
/// incentivized charging maintenance (Tier 2).
///
/// # Examples
///
/// ```
/// use esharing_core::{ESharing, SystemConfig};
/// use esharing_geo::Point;
///
/// let mut system = ESharing::new(SystemConfig::default());
/// // Historical destinations establish the landmarks...
/// let history: Vec<Point> = (0..200)
///     .map(|i| Point::new((i % 20) as f64 * 150.0, (i / 20) as f64 * 300.0))
///     .collect();
/// let landmarks = system.bootstrap(&history).to_vec();
/// assert!(!landmarks.is_empty());
/// // ...then live requests stream through the online algorithm.
/// let decision = system.handle_request(Point::new(310.0, 310.0)).unwrap();
/// let _ = decision.station();
/// ```
#[derive(Debug)]
pub struct ESharing {
    config: SystemConfig,
    online: Option<DeviationPenalty>,
    landmarks: Vec<Point>,
    metrics: SystemMetrics,
}

impl ESharing {
    /// Creates an un-bootstrapped system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SystemConfig) -> Self {
        config.validate();
        ESharing {
            config,
            online: None,
            landmarks: Vec::new(),
            metrics: SystemMetrics::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &SystemMetrics {
        &self.metrics
    }

    /// Offline landmark stations (empty before bootstrapping).
    pub fn landmarks(&self) -> &[Point] {
        &self.landmarks
    }

    /// Currently open stations (landmarks + online additions).
    pub fn stations(&self) -> Vec<Point> {
        self.online
            .as_ref()
            .map(|o| o.stations())
            .unwrap_or_default()
    }

    /// The KS similarity (percent) the online algorithm measured at its
    /// last periodic two-sample test, if one has run. Per-shard deployments
    /// surface this so a fleet aggregator can show each zone's drift.
    pub fn last_similarity(&self) -> Option<f64> {
        self.online.as_ref().and_then(|o| o.last_similarity())
    }

    /// Stations the online algorithm opened beyond the offline landmarks.
    pub fn opened_online(&self) -> usize {
        self.online.as_ref().map_or(0, |o| o.opened_online())
    }

    /// A copyable [`DecisionView`] of the online algorithm's observable
    /// state, or `None` before bootstrap. Cheap and side-effect free; the
    /// sharded engine republishes this through a lock-free cell after every
    /// decision so monitoring reads never enter the serving path.
    pub fn decision_view(&self) -> Option<DecisionView> {
        self.online.as_ref().map(|o| o.decision_view())
    }

    /// Runs the offline pipeline on a window of historical destinations:
    /// grid binning → candidate filtering → 1.61-factor placement — then
    /// arms the online algorithm with the resulting landmarks. Returns the
    /// landmark locations.
    ///
    /// The space cost of the landmark stations is charged into the metrics
    /// here.
    ///
    /// # Panics
    ///
    /// Panics if `history` is empty.
    pub fn bootstrap(&mut self, history: &[Point]) -> &[Point] {
        assert!(!history.is_empty(), "historical window must be non-empty");
        let grid = Grid::new(self.config.grid_cell_m);
        let mut centroids = grid.weighted_centroids(history.iter().copied());
        // Keep the most popular candidate cells.
        centroids.sort_by_key(|c| std::cmp::Reverse(c.1));
        centroids.truncate(self.config.max_candidate_cells);
        let instance = PlpInstance::from_weighted_centroids(&centroids, self.config.space_cost_m);
        let solution = offline::jms_greedy(&instance);
        self.landmarks = solution.facility_points(&instance);
        let online = DeviationPenalty::new(
            self.landmarks.clone(),
            history.to_vec(),
            self.config.deviation.clone(),
        );
        self.metrics.placement = self.metrics.placement + online.cost();
        self.online = Some(online);
        &self.landmarks
    }

    /// Captures a [`SystemCheckpoint`] of the complete mutable state, or
    /// `None` before bootstrap. The instance is untouched.
    pub fn checkpoint(&self) -> Option<SystemCheckpoint> {
        let online = self.online.as_ref()?;
        Some(SystemCheckpoint {
            landmarks: self.landmarks.clone(),
            metrics: self.metrics,
            deviation: online.checkpoint(),
        })
    }

    /// Rebuilds a bootstrapped system from a checkpoint.
    ///
    /// `config` supplies the non-checkpointed knobs and would normally be
    /// the config the checkpointed system ran with; the deviation seed is
    /// overwritten by the checkpoint's RNG position (see
    /// [`DeviationPenaltyCore::restore`](esharing_placement::online::DeviationPenaltyCore::restore)).
    /// The restored system's next decisions are bit-identical to what the
    /// original would have made.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the checkpoint is
    /// internally inconsistent.
    pub fn restore(config: SystemConfig, ckpt: SystemCheckpoint) -> Self {
        config.validate();
        let online = DeviationPenalty::restore(ckpt.deviation, config.deviation.clone());
        ESharing {
            config,
            online: Some(online),
            landmarks: ckpt.landmarks,
            metrics: ckpt.metrics,
        }
    }

    /// Handles one live trip request (Tier 1, Algorithm 2).
    ///
    /// # Errors
    ///
    /// Returns [`NotBootstrapped`] before [`ESharing::bootstrap`].
    pub fn handle_request(&mut self, destination: Point) -> Result<Decision, NotBootstrapped> {
        let online = self.online.as_mut().ok_or(NotBootstrapped)?;
        let before = online.cost();
        let decision = online.handle(destination);
        let after = online.cost();
        self.metrics.placement = self.metrics.placement
            + esharing_placement::PlacementCost::new(
                after.walking - before.walking,
                after.space - before.space,
            );
        self.metrics.requests_served += 1;
        Ok(decision)
    }

    /// [`ESharing::handle_request`] through the traced decision path:
    /// identical state updates and a bit-identical decision, plus the
    /// per-stage wall-clock breakdown. The serving layers call this for
    /// sampled requests only — every trace costs a handful of extra clock
    /// reads.
    ///
    /// # Errors
    ///
    /// Returns [`NotBootstrapped`] before [`ESharing::bootstrap`].
    pub fn handle_request_traced(
        &mut self,
        destination: Point,
    ) -> Result<(Decision, HandleTrace), NotBootstrapped> {
        let online = self.online.as_mut().ok_or(NotBootstrapped)?;
        let before = online.cost();
        let (decision, trace) = online.handle_traced(destination);
        let after = online.cost();
        self.metrics.placement = self.metrics.placement
            + esharing_placement::PlacementCost::new(
                after.walking - before.walking,
                after.space - before.space,
            );
        self.metrics.requests_served += 1;
        Ok((decision, trace))
    }

    /// Moves every placement event buffered since the last drain into
    /// `out`, oldest first (no-op before bootstrap).
    pub fn take_placement_events(&mut self, out: &mut Vec<PlacementEvent>) {
        if let Some(online) = self.online.as_mut() {
            online.take_events(out);
        }
    }

    /// Placement events discarded because nothing drained the bounded
    /// buffer (zero for instrumented deployments that drain per request).
    pub fn placement_events_dropped(&self) -> u64 {
        self.online.as_ref().map_or(0, |o| o.events_dropped())
    }

    /// The online algorithm's current decision-making opening cost `f`.
    pub fn decision_cost(&self) -> Option<f64> {
        self.online.as_ref().map(|o| o.decision_cost())
    }

    /// Hands out the pending boundary KS snapshot as an off-seat
    /// evaluation job, at most once per boundary (deferred drift mode
    /// only; see
    /// [`DeviationPenaltyCore::take_drift_task`](esharing_placement::online::DeviationPenaltyCore::take_drift_task)).
    /// `None` before bootstrap, in inline mode, or when nothing is ready.
    pub fn take_drift_task(&mut self) -> Option<DriftTask> {
        self.online.as_mut()?.take_drift_task()
    }

    /// Stores an off-seat drift verdict against the pending snapshot
    /// (no-op before bootstrap; stale or duplicate verdicts are ignored —
    /// the commit happens at the next doubling boundary either way).
    pub fn commit_drift_verdict(&mut self, verdict: DriftVerdict) {
        if let Some(online) = self.online.as_mut() {
            online.commit_drift_verdict(verdict);
        }
    }

    /// Whether a boundary KS snapshot is awaiting its deferred commit.
    pub fn drift_pending(&self) -> bool {
        self.online.as_ref().is_some_and(|o| o.drift_pending())
    }

    /// Cost-doubling epochs the online algorithm has completed.
    pub fn epoch(&self) -> u64 {
        self.online.as_ref().map_or(0, |o| o.epoch())
    }

    /// Summarizes the fleet's low-battery bikes per station.
    ///
    /// Each low bike is attributed to its nearest station; `arrivals` is
    /// the per-station offer budget from the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NotBootstrapped`] before [`ESharing::bootstrap`].
    pub fn station_energy(&self, fleet: &Fleet) -> Result<Vec<StationEnergy>, NotBootstrapped> {
        let stations = self.stations();
        if stations.is_empty() {
            return Err(NotBootstrapped);
        }
        let mut counts = vec![0usize; stations.len()];
        for bike in fleet.low_battery_bikes() {
            let nearest = stations
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    bike.location
                        .distance(**a)
                        .partial_cmp(&bike.location.distance(**b))
                        .expect("finite distances")
                })
                .map(|(i, _)| i)
                .expect("non-empty stations");
            counts[nearest] += 1;
        }
        Ok(stations
            .into_iter()
            .zip(counts)
            .map(|(location, low_bikes)| StationEnergy {
                location,
                low_bikes,
                arrivals: self.config.offers_per_station,
            })
            .collect())
    }

    /// Runs one Tier-2 maintenance period: incentive offers aggregate the
    /// low-battery bikes, the bikes move in the `fleet`, the operator runs
    /// a shift over the remaining demand, and serviced bikes recharge.
    ///
    /// # Errors
    ///
    /// Returns [`NotBootstrapped`] before [`ESharing::bootstrap`].
    pub fn maintenance_period(
        &mut self,
        fleet: &mut Fleet,
    ) -> Result<MaintenanceReport, NotBootstrapped> {
        let stations = self.station_energy(fleet)?;
        let mechanism = IncentiveMechanism::new(
            self.config.charging,
            self.config.users,
            self.config.alpha,
            self.config.seed ^ self.metrics.maintenance_periods,
        );
        let outcome = mechanism.run_period(&stations);
        // Physically relocate the incentivized bikes in the fleet: move
        // each source station's relocated low bikes to its target station.
        for (i, station) in stations.iter().enumerate() {
            let moved = station.low_bikes.saturating_sub(outcome.remaining_low[i]);
            if moved == 0 {
                continue;
            }
            let target_loc = stations[outcome.target_of[i]].location;
            let mut candidates: Vec<u64> = fleet
                .low_battery_bikes()
                .iter()
                .filter(|b| {
                    // Attributed to station i: closer to it than to any other.
                    let my_d = b.location.distance(station.location);
                    stations
                        .iter()
                        .all(|s| b.location.distance(s.location) >= my_d - 1e-9)
                })
                .map(|b| b.bike_id)
                .collect();
            candidates.truncate(moved);
            for bike_id in candidates {
                fleet.relocate(bike_id, target_loc);
            }
        }
        let after = Operator::stations_after_incentives(&stations, &outcome);
        let shift = self
            .config
            .operator
            .run_shift(&after, &self.config.charging);
        // Recharge the bikes at visited stations.
        for &idx in &shift.visited {
            let loc = after[idx].location;
            let ids: Vec<u64> = fleet
                .low_battery_bikes()
                .iter()
                .filter(|b| {
                    let my_d = b.location.distance(loc);
                    after
                        .iter()
                        .all(|s| b.location.distance(s.location) >= my_d - 1e-9)
                })
                .map(|b| b.bike_id)
                .collect();
            for id in ids {
                fleet.recharge(id);
            }
        }
        let total_cost = shift.tour_cost + outcome.incentives_paid;
        self.metrics.maintenance_cost += total_cost;
        self.metrics.incentives_paid += outcome.incentives_paid;
        self.metrics.bikes_charged += shift.bikes_charged as u64;
        self.metrics.bikes_missed += shift.bikes_missed as u64;
        self.metrics.operator_distance_m += shift.distance_m;
        self.metrics.maintenance_periods += 1;
        Ok(MaintenanceReport {
            incentives: outcome,
            shift,
            total_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharing_dataset::EnergyModel;
    use esharing_geo::BBox;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    fn small_config() -> SystemConfig {
        SystemConfig {
            space_cost_m: 5_000.0,
            deviation: esharing_placement::online::DeviationConfig {
                space_cost: 5_000.0,
                ..Default::default()
            },
            ..SystemConfig::default()
        }
    }

    #[test]
    fn request_before_bootstrap_fails() {
        let mut sys = ESharing::new(small_config());
        assert_eq!(sys.handle_request(Point::ORIGIN), Err(NotBootstrapped));
        assert!(sys.stations().is_empty());
        assert!(sys.landmarks().is_empty());
    }

    #[test]
    fn bootstrap_builds_landmarks() {
        let mut sys = ESharing::new(small_config());
        let history = uniform_points(300, 1000.0, 1);
        let landmarks = sys.bootstrap(&history).to_vec();
        assert!(!landmarks.is_empty());
        assert!(landmarks.len() < 20, "landmark count {}", landmarks.len());
        assert_eq!(sys.stations().len(), landmarks.len());
        // Space cost charged for landmarks.
        assert_eq!(
            sys.metrics().placement.space,
            landmarks.len() as f64 * 5_000.0
        );
    }

    #[test]
    fn requests_update_metrics() {
        let mut sys = ESharing::new(small_config());
        sys.bootstrap(&uniform_points(300, 1000.0, 2));
        for p in uniform_points(100, 1000.0, 3) {
            sys.handle_request(p).unwrap();
        }
        let m = sys.metrics();
        assert_eq!(m.requests_served, 100);
        assert!(m.placement.total() > 0.0);
        assert!(m.avg_walk_m() < 1000.0);
        assert_eq!(
            sys.stations().len(),
            sys.landmarks().len() + sys.opened_online()
        );
        if let Some(sim) = sys.last_similarity() {
            assert!((0.0..=100.0).contains(&sim));
        }
    }

    #[test]
    fn maintenance_reduces_low_bikes() {
        let mut sys = ESharing::new(SystemConfig {
            alpha: 0.8,
            ..small_config()
        });
        sys.bootstrap(&uniform_points(300, 1000.0, 4));
        let mut fleet = Fleet::new(200, BBox::square(1000.0), EnergyModel::default(), 5);
        // Drain some bikes hard.
        let trips: Vec<esharing_dataset::Trip> = uniform_points(400, 1000.0, 6)
            .chunks(2)
            .enumerate()
            .map(|(i, pair)| esharing_dataset::Trip {
                order_id: i as u64,
                user_id: 0,
                bike_id: (i % 200) as u64,
                bike_type: 1,
                start_time: esharing_dataset::Timestamp(0),
                start: pair[0],
                end: pair[1],
            })
            .collect();
        for _ in 0..8 {
            fleet.replay(trips.iter());
        }
        let low_before = fleet.low_battery_bikes().len();
        assert!(low_before > 0, "workload should create low bikes");
        let report = sys.maintenance_period(&mut fleet).unwrap();
        let low_after = fleet.low_battery_bikes().len();
        assert!(
            low_after < low_before,
            "maintenance did not help: {low_before} -> {low_after}"
        );
        assert!(report.total_cost > 0.0);
        assert_eq!(sys.metrics().maintenance_periods, 1);
    }

    #[test]
    fn incentives_lower_maintenance_cost() {
        // The headline Tier-2 claim: α > 0 yields cheaper maintenance than
        // α = 0 on the same fleet state.
        let run = |alpha: f64| -> f64 {
            let mut sys = ESharing::new(SystemConfig {
                alpha,
                ..small_config()
            });
            sys.bootstrap(&uniform_points(300, 1000.0, 7));
            let mut fleet = Fleet::new(300, BBox::square(1000.0), EnergyModel::default(), 8);
            let trips: Vec<esharing_dataset::Trip> = uniform_points(1200, 1000.0, 9)
                .chunks(2)
                .enumerate()
                .map(|(i, pair)| esharing_dataset::Trip {
                    order_id: i as u64,
                    user_id: 0,
                    bike_id: (i % 300) as u64,
                    bike_type: 1,
                    start_time: esharing_dataset::Timestamp(0),
                    start: pair[0],
                    end: pair[1],
                })
                .collect();
            for _ in 0..6 {
                fleet.replay(trips.iter());
            }
            let report = sys.maintenance_period(&mut fleet).unwrap();
            report.total_cost
        };
        let without = run(0.0);
        let moderate = run(0.4);
        let full = run(1.0);
        assert!(
            moderate < without,
            "incentives did not save: alpha=0.4 cost {moderate} vs alpha=0 cost {without}"
        );
        // Table VI's pattern: a moderate α beats paying users the full
        // saving, which erodes the margin.
        assert!(
            moderate < full,
            "alpha=0.4 cost {moderate} should beat alpha=1.0 cost {full}"
        );
    }

    #[test]
    fn traced_requests_match_untraced() {
        // The traced path must be observation-only: interleaving traced
        // and untraced requests reproduces the plain run bit-for-bit.
        let history = uniform_points(300, 1000.0, 21);
        let stream = uniform_points(200, 1000.0, 22);
        let mut plain = ESharing::new(small_config());
        plain.bootstrap(&history);
        let mut traced = ESharing::new(small_config());
        traced.bootstrap(&history);
        let mut drained = Vec::new();
        for (i, &p) in stream.iter().enumerate() {
            let d1 = plain.handle_request(p).unwrap();
            let d2 = if i % 5 == 0 {
                traced.handle_request_traced(p).unwrap().0
            } else {
                traced.handle_request(p).unwrap()
            };
            assert_eq!(d1, d2);
            traced.take_placement_events(&mut drained);
        }
        assert_eq!(plain.metrics(), traced.metrics());
        assert_eq!(traced.placement_events_dropped(), 0);
        let opened = drained
            .iter()
            .filter(|e| matches!(e, PlacementEvent::Opened { .. }))
            .count();
        assert_eq!(opened, traced.opened_online());
        assert!(traced.decision_cost().unwrap() > 0.0);
        assert!(traced.epoch() > 0);
        // Before bootstrap all the telemetry accessors stay inert.
        let fresh = ESharing::new(small_config());
        assert_eq!(fresh.decision_cost(), None);
        assert_eq!(fresh.epoch(), 0);
        assert_eq!(fresh.placement_events_dropped(), 0);
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let history = uniform_points(300, 1000.0, 31);
        let stream = uniform_points(200, 1000.0, 32);
        let mut sys = ESharing::new(small_config());
        sys.bootstrap(&history);
        let mut drained = Vec::new();
        for &p in &stream[..120] {
            sys.handle_request(p).unwrap();
            sys.take_placement_events(&mut drained);
        }
        let ckpt = sys.checkpoint().unwrap();
        let mut restored = ESharing::restore(small_config(), ckpt.clone());
        assert_eq!(restored.checkpoint().unwrap(), ckpt);
        for &p in &stream[120..] {
            assert_eq!(
                sys.handle_request(p).unwrap(),
                restored.handle_request(p).unwrap()
            );
            sys.take_placement_events(&mut drained);
            restored.take_placement_events(&mut drained);
        }
        assert_eq!(sys.metrics(), restored.metrics());
        assert_eq!(sys.stations(), restored.stations());
        assert_eq!(sys.checkpoint(), restored.checkpoint());
        // Un-bootstrapped systems have nothing to checkpoint.
        assert!(ESharing::new(small_config()).checkpoint().is_none());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn bootstrap_rejects_empty_history() {
        let mut sys = ESharing::new(small_config());
        sys.bootstrap(&[]);
    }
}
