//! The sharded serving engine: router, admission control, lifecycle.

use crate::aggregate::{EngineSnapshot, ShardSnapshot};
use crate::checkpoint::encode_checkpoint;
use crate::fastpath::{DecisionViewCell, DownstreamRing, DriftSlot};
use crate::health::{HealthConfig, HealthHandle, HealthPlane, HealthSlot};
use crate::lifecycle::{LifecycleConfig, OpCounters, PolicyState};
use crate::reopt::{ReoptConfig, ReoptRuntime};
use crate::shard::{self, Command, WorkerState};
use crate::shard_map::ShardMap;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use esharing_core::server::ServerSnapshot;
use esharing_core::{
    ESharing, LatencyHistogram, ServeTrace, SystemConfig, SystemMetrics, TelemetryProbe,
    WorkerTelemetry,
};
use esharing_geo::{BBox, Grid, Point};
use esharing_placement::online::{Decision, DecisionView};
use esharing_placement::{offline, PlpInstance};
use esharing_telemetry::{
    Event, EventJournal, EventKind, EventLog, FlightSample, MetricsServer, Scrape, ScrapeSource,
    TelemetryConfig,
};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// How the engine partitions the city into shard zones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partition {
    /// Equal-area rectangles over the historical bounding box.
    UniformGrid,
    /// Voronoi cells anchored on the offline solution's landmarks,
    /// clustered down to the shard count (demand-balanced).
    LandmarkVoronoi,
}

/// Which serving substrate carries requests to the per-shard decision
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionPath {
    /// The shared-nothing fast path (default): the submitting thread
    /// decides **inline** under the shard's seat — no mailbox, no reply
    /// channel, no thread handoff on the request path. The emulated
    /// downstream fetch is handed to the shard's drain worker through a
    /// bounded lock-free ring whose occupancy drives admission control,
    /// and the shard republishes a [`DecisionView`] through a seqlock
    /// cell after every decision for lock-free monitoring reads.
    SyncShared,
    /// The original crossbeam-mailbox architecture: one worker thread per
    /// shard serving a bounded command channel, every request paying the
    /// enqueue → wake-up → reply round trip. Kept benchmarkable
    /// (`exp_engine --mailbox-fallback`) as the measured baseline the
    /// fast path is judged against.
    Mailbox,
}

/// Engine construction and tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Requested shard count (the realized count can be lower when a
    /// [`Partition::LandmarkVoronoi`] map finds fewer landmarks, and
    /// changes at runtime once the lifecycle subsystem splits or merges
    /// zones).
    pub shards: usize,
    /// Zone geometry.
    pub partition: Partition,
    /// Serving substrate; see [`DecisionPath`].
    pub decision_path: DecisionPath,
    /// Bounded queue depth per shard — the downstream ring on the fast
    /// path, the command mailbox on the fallback. [`Engine::submit`]
    /// sheds to a [`EngineDecision::Degraded`] once it fills.
    pub queue_capacity: usize,
    /// Emulated downstream service time per request (off-CPU latency:
    /// persistence, push notification). Each shard worker models one
    /// downstream FIFO pipe with this deterministic service time: queued
    /// requests issue back-to-back, and the worker computes decisions
    /// inside the fetch window. The single-worker
    /// [`RequestServer`](esharing_core::server::RequestServer) given the
    /// same `service_delay` emulates the same downstream by blocking its
    /// only thread on each call — the throughput comparison measures that
    /// architectural difference. Zero disables the emulation.
    pub service_delay: Duration,
    /// Shards whose zone holds fewer historical points than this bootstrap
    /// on the nearest `min_shard_history` points to their anchor instead,
    /// so sparse zones still get a valid offline solution.
    pub min_shard_history: usize,
    /// Per-worker telemetry: metrics registry, event journal, and sampled
    /// decision tracing. Every shard worker gets its own instance sharing
    /// one epoch instant, so journal timestamps are fleet-comparable.
    pub telemetry: TelemetryConfig,
    /// Elastic shard lifecycle: checkpointing cadence, write-ahead
    /// logging, and the hot/cold thresholds that drive live split/merge.
    /// Disabled by default — a disabled lifecycle carries zero request-
    /// path cost and the control methods return
    /// [`LifecycleDisabled`](crate::lifecycle::LifecycleError::LifecycleDisabled).
    pub lifecycle: LifecycleConfig,
    /// The fleet health plane: in-process time-series store, SLO
    /// burn-rate rules, and the anomaly-triggered flight recorder.
    /// Disabled by default; when on, each fast shard's drain worker
    /// doubles as the health pump on a sweep cadence (no extra threads)
    /// and every fast-path decision records one unsampled flight sample.
    /// The mailbox fallback lane is health-inert (baseline comparisons).
    pub health: HealthConfig,
    /// The epochal re-optimization loop: warm-start incremental JMS
    /// re-solves on drift/epoch triggers, hot-swapping new landmark
    /// sets into running shards without pausing decisions. Disabled by
    /// default — a disabled loop keeps no state and the 1-shard
    /// [`RequestServer`](esharing_core::server::RequestServer)
    /// equivalence is untouched.
    pub reopt: ReoptConfig,
    /// The per-shard system configuration. Shard `i` reseeds its
    /// stochastic components with `seed ^ i`, so shard 0 of a one-shard
    /// engine is bit-identical to a plain `ESharing` on the same config.
    pub system: SystemConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            partition: Partition::LandmarkVoronoi,
            decision_path: DecisionPath::SyncShared,
            queue_capacity: 8192,
            service_delay: Duration::ZERO,
            min_shard_history: 32,
            telemetry: TelemetryConfig::default(),
            lifecycle: LifecycleConfig::default(),
            health: HealthConfig::default(),
            reopt: ReoptConfig::default(),
            system: SystemConfig::default(),
        }
    }
}

impl EngineConfig {
    fn validate(&self) {
        assert!(self.shards > 0, "need at least one shard");
        assert!(self.queue_capacity > 0, "queue capacity must be positive");
        assert!(
            self.min_shard_history > 0,
            "min shard history must be positive"
        );
        self.lifecycle.validate();
        self.reopt.validate();
        self.system.validate();
    }
}

/// Error returned when the engine's workers have shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineClosed;

impl fmt::Display for EngineClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "the serving engine has shut down")
    }
}

impl Error for EngineClosed {}

/// The outcome of one request routed through the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EngineDecision {
    /// The shard served the request.
    Served {
        /// Serving shard.
        shard: usize,
        /// The online algorithm's decision.
        decision: Decision,
    },
    /// The shard's mailbox was full (or the shard is awaiting recovery);
    /// admission control shed the request instead of blocking. The user
    /// is directed to the shard's nearest *offline* landmark — a valid
    /// parking that needs no state update — and the shard's online state
    /// never sees the request.
    Degraded {
        /// Overloaded shard.
        shard: usize,
        /// Nearest offline landmark to the destination.
        fallback: Point,
    },
}

impl EngineDecision {
    /// The shard the request routed to.
    pub fn shard(&self) -> usize {
        match *self {
            EngineDecision::Served { shard, .. } | EngineDecision::Degraded { shard, .. } => shard,
        }
    }

    /// Whether admission control shed the request.
    pub fn degraded(&self) -> bool {
        matches!(self, EngineDecision::Degraded { .. })
    }
}

/// Admission result of a fire-and-forget submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued on `shard`; the decision will land in its metrics.
    Accepted {
        /// Receiving shard.
        shard: usize,
    },
    /// Shed by admission control (mailbox full).
    Shed {
        /// Overloaded shard.
        shard: usize,
    },
}

/// The decision-owning state of a fast-path shard: taken (briefly) by
/// whichever submitting thread is deciding. `system` becomes `None` at
/// shutdown, which is how later submits learn the engine closed; `moved`
/// flips when a lifecycle operation (split/merge/kill) retires the seat,
/// telling blocked submitters to reload the router table and retry.
pub(crate) struct SeatState {
    pub(crate) system: Option<ESharing>,
    pub(crate) telemetry: Option<WorkerTelemetry>,
    /// Arrival → decision latency of every request this shard served.
    pub(crate) latency: LatencyHistogram,
    /// Set (under the seat lock) when this seat's shard was retired by a
    /// lifecycle operation — the state lives elsewhere now.
    pub(crate) moved: bool,
}

/// Per-shard serving substrate, per [`DecisionPath`].
pub(crate) enum ShardLane {
    /// Shared-nothing fast path: decisions run inline on the caller under
    /// `seat`; accepted requests enqueue one downstream job on `ring`.
    /// The seat state is boxed so the lane enum stays small next to the
    /// mailbox variant.
    Fast {
        ring: Arc<DownstreamRing>,
        seat: Mutex<Box<SeatState>>,
        /// Round-robin trace-sampling tick, bumped per request *before*
        /// any clock is read, so sampling never perturbs decisions.
        trace_tick: AtomicU64,
        /// Deferred-drift handoff with the drain worker: boundary KS
        /// re-tests leave the seat through here and their verdicts come
        /// back the same way ([`DriftMode::Deferred`]
        /// (esharing_placement::online::DriftMode::Deferred) only; idle
        /// otherwise).
        drift: Arc<DriftSlot>,
        /// Health-pump handshake cell (scalar mirrors plus the seat's
        /// registry-snapshot offer/take), present only when the health
        /// plane is enabled.
        health: Option<Arc<HealthSlot>>,
    },
    /// Mailbox fallback: the original bounded command channel.
    Mailbox {
        tx: Sender<Command>,
        /// Commands currently in the mailbox (router increments before
        /// `try_send`, the worker decrements on dequeue). The stub
        /// channel carries no `len()`, so the router mirrors the depth
        /// itself — this is what the shed journal records as
        /// `queue_depth`. The fast path needs no mirror: the ring
        /// counts its own occupancy.
        inflight: Arc<AtomicU64>,
    },
    /// A killed shard awaiting [`Engine::recover_shard`]: submits shed to
    /// the zone's offline landmarks (service degrades, it never stops).
    Dead,
}

pub(crate) struct ShardSlot {
    pub(crate) lane: ShardLane,
    /// The zone's offline landmarks, cached router-side for degraded-mode
    /// fallbacks (immutable for the slot's lifetime).
    pub(crate) landmarks: Vec<Point>,
    pub(crate) shed: AtomicU64,
    /// Pending-queue depth the router observed at the most recent shed:
    /// ring occupancy (queued + in-fetch jobs) on the fast path, mailbox
    /// depth on the fallback.
    pub(crate) last_shed_depth: AtomicU64,
    /// Seqlock-published [`DecisionView`], republished after every fast-
    /// path decision. Never published by the mailbox lane.
    pub(crate) view: DecisionViewCell,
    /// The shard's write-ahead log of admitted requests, present when the
    /// lifecycle subsystem is enabled. Entries are appended in apply
    /// order (under the seat on the fast path, by the worker on the
    /// mailbox path), so replaying the suffix past a checkpoint's
    /// high-water sequence reproduces the shard bit-identically.
    pub(crate) wal: Option<Arc<Mutex<EventJournal>>>,
    /// The shard's most recent encoded [`ShardCheckpoint`]
    /// (crate::checkpoint::ShardCheckpoint), the recovery source after a
    /// kill.
    pub(crate) checkpoint: Mutex<Option<Vec<u8>>>,
    /// WAL sequence covered by the stored checkpoint.
    pub(crate) wal_high_water: AtomicU64,
    /// Re-optimization epoch of the landmark set this slot serves
    /// (0 = the bootstrap solution; bumped by every epochal hot-swap).
    /// Carried into checkpoints (v3) so recovery restores provenance.
    pub(crate) reopt_epoch: AtomicU64,
    /// Lifetime landmark hot-swaps applied to this zone.
    pub(crate) landmark_swaps: AtomicU64,
    /// Demand mass (number of historical arrivals) the zone's landmark
    /// set was planned against. The epochal re-optimizer normalizes its
    /// windowed re-solve instances to this mass so a KS-window-sized
    /// sample plans facilities at the same demand scale the bootstrap
    /// did, instead of opening a fraction of the landmarks because the
    /// window holds a fraction of the arrivals.
    pub(crate) bootstrap_mass: u64,
    /// The shard's worker thread (drain worker on the fast path, mailbox
    /// worker on the fallback); `None` on dead slots and after shutdown.
    pub(crate) worker: Mutex<Option<WorkerHandle>>,
}

impl ShardSlot {
    /// Jobs currently pending downstream: ring occupancy on the fast
    /// path, the mailbox-depth mirror on the fallback, zero on a dead
    /// slot.
    pub(crate) fn pending(&self) -> u64 {
        match &self.lane {
            ShardLane::Fast { ring, .. } => ring.occupancy(),
            ShardLane::Mailbox { inflight, .. } => inflight.load(Ordering::Relaxed),
            ShardLane::Dead => 0,
        }
    }

    /// Whether the slot is serving (not awaiting recovery).
    pub(crate) fn alive(&self) -> bool {
        !matches!(self.lane, ShardLane::Dead)
    }
}

/// Everything a submit needs to route: the zone map and the slots it
/// indexes into. Lifecycle operations build a new table and swap the
/// `Arc` atomically under [`EngineShared::table`], so routers always see
/// map and slots move together.
pub(crate) struct RouterTable {
    pub(crate) map: ShardMap,
    pub(crate) shards: Vec<Arc<ShardSlot>>,
}

/// What a fast-path serve attempt observed.
enum FastServe {
    /// Decision (or shed) completed on this slot.
    Done(EngineDecision),
    /// The seat was retired by a lifecycle operation mid-flight; reload
    /// the router table and retry.
    Moved,
}

/// State shared between the router handle and the telemetry scrape
/// source, so an HTTP scrape can probe the fleet without holding the
/// engine itself.
pub(crate) struct EngineShared {
    /// The current router table; swapped wholesale by lifecycle
    /// operations. Submits lock only long enough to clone the `Arc`.
    pub(crate) table: Mutex<Arc<RouterTable>>,
    /// Flipped once at shutdown: every entry point checks it first and
    /// reports [`EngineClosed`] instead of touching retired lanes.
    pub(crate) closed: AtomicBool,
    /// The engine configuration, kept for lifecycle operations that
    /// build new shards at runtime (split, recover).
    pub(crate) cfg: EngineConfig,
    pub(crate) telemetry_enabled: bool,
    /// Trace-sampling period, mirrored router-side so the fast path can
    /// decide sampling before touching the seat (or any clock).
    pub(crate) sample_period: u64,
    /// Timestamp origin shared by every journal and by the downstream
    /// ring's arrival stamps.
    pub(crate) epoch: Instant,
    /// Router-side journal for shed events (workers never see shed
    /// requests) and for lifecycle transitions
    /// (split/merge/recover). Submitting threads contend on this only
    /// when a shed actually happens — the accept path never locks it.
    pub(crate) shed_journal: Mutex<EventJournal>,
    /// Fleet-wide merged event log, fed by snapshot probes.
    pub(crate) events: Mutex<EventLog>,
    /// Serializes lifecycle operations (split/merge/kill/recover/
    /// checkpoint/tick) and holds the policy's hysteresis state.
    pub(crate) gate: Mutex<PolicyState>,
    /// Lifetime counters of lifecycle operations, for `/metrics`.
    pub(crate) ops: OpCounters,
    /// The fleet health plane (tsdb + SLO engine + flight recorder),
    /// present when [`HealthConfig::enabled`] is set.
    pub(crate) health: Option<Arc<HealthPlane>>,
    /// The epochal re-optimization loop's shared state, present when
    /// [`ReoptConfig::enabled`] is set.
    pub(crate) reopt: Option<Arc<ReoptRuntime>>,
    /// The background maintenance thread, present when the loop runs
    /// on a cadence ([`ReoptConfig::interval_ms`] > 0). Joined (before
    /// the gate is taken — the thread takes the gate itself) at
    /// shutdown and drop.
    pub(crate) reopt_worker: Mutex<Option<JoinHandle<()>>>,
}

impl EngineShared {
    /// The current router table.
    pub(crate) fn table(&self) -> Arc<RouterTable> {
        Arc::clone(&self.table.lock().expect("router table not poisoned"))
    }

    /// Publishes a new router table. Callers (lifecycle operations) hold
    /// the retired seats across this call, so blocked submitters wake to
    /// a table that no longer routes to them.
    pub(crate) fn swap_table(&self, next: Arc<RouterTable>) {
        *self.table.lock().expect("router table not poisoned") = next;
    }

    /// Admission bookkeeping for `count` shed requests against `slot`:
    /// counter, last-seen depth, and one journal event per request.
    fn note_shed(&self, slot: &ShardSlot, count: u64, depth: u64) {
        slot.shed.fetch_add(count, Ordering::Relaxed);
        slot.last_shed_depth.store(depth, Ordering::Relaxed);
        if let ShardLane::Fast {
            health: Some(h), ..
        } = &slot.lane
        {
            // Mirror for the health pump's shed-rate series; works with
            // telemetry fully disabled (overhead A/B runs keep SLOs).
            h.note_sheds(count);
        }
        if self.telemetry_enabled {
            let mut journal = self.shed_journal.lock().expect("shed journal not poisoned");
            for _ in 0..count {
                journal.record(EventKind::ShardShed { queue_depth: depth });
            }
        }
    }

    /// Fast-path inline service of one destination on `slot`: claim a
    /// downstream-ring slot (shedding **before** any state mutation if
    /// the ring is full), take the seat, decide, account, append the WAL
    /// entry, republish the shard's [`DecisionView`].
    fn serve_fast(
        &self,
        slot: &ShardSlot,
        shard: usize,
        destination: Point,
    ) -> Result<FastServe, EngineClosed> {
        let ShardLane::Fast {
            ring,
            seat,
            trace_tick,
            drift,
            health,
        } = &slot.lane
        else {
            unreachable!("serve_fast is only routed on fast lanes");
        };
        // Sampling is decided before any clock read so traced and
        // untraced requests follow bit-identical decision paths.
        let traced = self.telemetry_enabled
            && trace_tick.fetch_add(1, Ordering::Relaxed) % self.sample_period == 0;
        let arrival = Instant::now();
        let t_ring = traced.then(Instant::now);
        if let Err(occupancy) = ring.try_claim(elapsed_ns(self.epoch)) {
            // Shed before touching the shard's online state — but check
            // the seat's moved flag first: a full ring on a slot retired
            // by a lifecycle swap must bounce to the new table, never
            // hand out a fallback from the retired zone's landmarks.
            if seat.lock().expect("seat not poisoned").moved {
                return Ok(FastServe::Moved);
            }
            self.note_shed(slot, 1, occupancy);
            if let Some(plane) = &self.health {
                plane.flights().record(FlightSample {
                    t_ns: elapsed_ns(self.epoch),
                    shard: shard as u32,
                    latency_ns: 0,
                    queue_ns: 0,
                    ring_occupancy: occupancy.min(u64::from(u32::MAX)) as u32,
                    shed: true,
                });
            }
            return Ok(FastServe::Done(EngineDecision::Degraded {
                shard,
                fallback: nearest_landmark(&slot.landmarks, destination),
            }));
        }
        let ring_ns = t_ring.map(elapsed_ns);
        // The flight recorder wants the seat wait on *every* decision
        // (unsampled — retention, not recording, bounds its cost), so the
        // health plane pays one extra clock read per request here.
        let t_seat = (traced || health.is_some()).then(Instant::now);
        let mut seat = seat.lock().expect("seat not poisoned");
        let seat_ns = t_seat.map(elapsed_ns);
        let state = &mut *seat;
        if state.moved {
            // A lifecycle operation retired this seat while we waited; the
            // ring claim drains harmlessly (the old drain worker empties
            // its ring before stopping).
            return Ok(FastServe::Moved);
        }
        let system = state.system.as_mut().ok_or(EngineClosed)?;
        // Collect the drain worker's off-seat re-test verdict (if one
        // landed) *before* deciding: if this request is the commit
        // boundary, the stored verdict is consumed there instead of being
        // recomputed inline.
        if let Some((verdict, eval_ns)) = drift.take_verdict() {
            system.commit_drift_verdict(verdict);
            if let Some(t) = state.telemetry.as_mut() {
                t.observe_deferred_retest(eval_ns);
            }
        }
        let (decision, trace) = match (ring_ns, seat_ns) {
            (Some(ring_ns), Some(seat_ns)) => {
                let (d, tr) = system
                    .handle_request_traced(destination)
                    .expect("shard systems are bootstrapped at engine start");
                (d, Some(ServeTrace::seat(seat_ns, ring_ns, tr)))
            }
            _ => (
                system
                    .handle_request(destination)
                    .expect("shard systems are bootstrapped at engine start"),
                None,
            ),
        };
        if let Some(wal) = &slot.wal {
            wal.lock()
                .expect("wal not poisoned")
                .record(EventKind::RequestAdmitted {
                    x: destination.x,
                    y: destination.y,
                });
        }
        let latency_ns = elapsed_ns(arrival);
        state.latency.record_ns(latency_ns);
        if let Some(t) = state.telemetry.as_mut() {
            t.on_decision(system, &decision, latency_ns, trace);
        }
        if let (Some(plane), Some(hslot)) = (&self.health, health) {
            hslot.note_decision();
            if hslot.registry_requested() {
                // Answer the drain worker's sweep request with a registry
                // snapshot while we already hold the seat (never blocks:
                // the pump takes it on its own next quantum).
                hslot.offer_registry(state.telemetry.as_ref().map(|t| t.registry().snapshot()));
            }
            plane.flights().record(FlightSample {
                t_ns: elapsed_ns(self.epoch),
                shard: shard as u32,
                latency_ns,
                queue_ns: seat_ns.unwrap_or(0),
                ring_occupancy: ring.occupancy().min(u64::from(u32::MAX)) as u32,
                shed: false,
            });
        }
        // If this request crossed a doubling boundary, the seat snapshotted
        // the window; hand the re-test to the drain worker instead of
        // paying the O(window²) Peacock evaluation on the request path.
        if let Some(task) = system.take_drift_task() {
            drift.offer(task);
        }
        slot.view
            .publish(&system.decision_view().expect("bootstrapped system"));
        Ok(FastServe::Done(EngineDecision::Served { shard, decision }))
    }

    /// Routes one destination; see [`Engine::submit`]. Retries through a
    /// fresh router table whenever a lifecycle operation moves the shard
    /// mid-flight, so in-flight requests survive splits and merges.
    pub(crate) fn submit(&self, destination: Point) -> Result<EngineDecision, EngineClosed> {
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(EngineClosed);
            }
            let table = self.table();
            let shard = table.map.shard_of(destination);
            let slot = &table.shards[shard];
            match &slot.lane {
                ShardLane::Fast { .. } => match self.serve_fast(slot, shard, destination)? {
                    FastServe::Done(decision) => return Ok(decision),
                    FastServe::Moved => {
                        std::thread::yield_now();
                        continue;
                    }
                },
                ShardLane::Mailbox { tx, inflight } => {
                    // A thread has at most one request in flight (submit
                    // blocks until the decision lands), so the reply channel
                    // is provably empty between calls — reuse one per thread
                    // instead of allocating a fresh channel on every request.
                    thread_local! {
                        static REPLY: (Sender<Decision>, Receiver<Decision>) = bounded(1);
                    }
                    inflight.fetch_add(1, Ordering::Relaxed);
                    let outcome = REPLY.with(|(reply_tx, reply_rx)| {
                        match tx.try_send(Command::Request {
                            destination,
                            reply: Some(reply_tx.clone()),
                            arrival: Instant::now(),
                        }) {
                            Ok(()) => match reply_rx.recv() {
                                Ok(decision) => {
                                    Some(Ok(EngineDecision::Served { shard, decision }))
                                }
                                // The worker left without answering: either
                                // shutdown or a lifecycle kill. Distinguish
                                // by the closed flag and retry the latter.
                                Err(_) => {
                                    if self.closed.load(Ordering::Acquire) {
                                        Some(Err(EngineClosed))
                                    } else {
                                        None
                                    }
                                }
                            },
                            Err(TrySendError::Full(_)) => {
                                let prev = inflight.fetch_sub(1, Ordering::Relaxed);
                                self.note_shed(slot, 1, prev.saturating_sub(1));
                                Some(Ok(EngineDecision::Degraded {
                                    shard,
                                    fallback: nearest_landmark(&slot.landmarks, destination),
                                }))
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                inflight.fetch_sub(1, Ordering::Relaxed);
                                if self.closed.load(Ordering::Acquire) {
                                    Some(Err(EngineClosed))
                                } else {
                                    None
                                }
                            }
                        }
                    });
                    match outcome {
                        Some(result) => return result,
                        None => {
                            std::thread::yield_now();
                            continue;
                        }
                    }
                }
                ShardLane::Dead => {
                    self.note_shed(slot, 1, 0);
                    return Ok(EngineDecision::Degraded {
                        shard,
                        fallback: nearest_landmark(&slot.landmarks, destination),
                    });
                }
            }
        }
    }

    /// Routes a batch; see [`Engine::submit_batch`].
    pub(crate) fn submit_batch(
        &self,
        destinations: &[Point],
    ) -> Result<Vec<EngineDecision>, EngineClosed> {
        if self.closed.load(Ordering::Acquire) {
            return Err(EngineClosed);
        }
        let table = self.table();
        // Group by shard, keeping each shard's items in submission order.
        let mut groups: Vec<Vec<(usize, Point)>> = vec![Vec::new(); table.shards.len()];
        for (i, &p) in destinations.iter().enumerate() {
            groups[table.map.shard_of(p)].push((i, p));
        }
        let mut out: Vec<Option<EngineDecision>> = vec![None; destinations.len()];
        // Mailbox lanes: dispatch every sub-batch before collecting any
        // reply, so those shards work concurrently while fast-lane groups
        // are served inline below.
        type PendingReply = (usize, Receiver<Vec<Decision>>, Vec<(usize, Point)>);
        let mut pending: Vec<PendingReply> = Vec::new();
        let mut inline: Vec<(usize, Vec<(usize, Point)>)> = Vec::new();
        // Groups whose shard moved (or whose worker died to a lifecycle
        // kill) mid-batch: re-submitted item by item through the ordinary
        // retry path at the end.
        let mut resubmit: Vec<(usize, Point)> = Vec::new();
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let slot = &table.shards[shard];
            match &slot.lane {
                ShardLane::Fast { ring, seat, .. } => {
                    // Claim the whole sub-batch's downstream slots as one
                    // unit — a full ring sheds the entire group, matching
                    // the mailbox path's whole-sub-batch shed.
                    match ring.try_claim_batch(group.len() as u64, elapsed_ns(self.epoch)) {
                        Ok(()) => inline.push((shard, group)),
                        Err(occupancy) => {
                            // Same moved-seat bounce as `serve_fast`: a
                            // retired slot's landmarks must never back a
                            // degraded fallback.
                            if seat.lock().expect("seat not poisoned").moved {
                                resubmit.extend(group);
                                continue;
                            }
                            self.note_shed(slot, group.len() as u64, occupancy);
                            if let Some(plane) = &self.health {
                                let t_ns = elapsed_ns(self.epoch);
                                for _ in 0..group.len() {
                                    plane.flights().record(FlightSample {
                                        t_ns,
                                        shard: shard as u32,
                                        latency_ns: 0,
                                        queue_ns: 0,
                                        ring_occupancy: occupancy.min(u64::from(u32::MAX)) as u32,
                                        shed: true,
                                    });
                                }
                            }
                            for (i, p) in group {
                                out[i] = Some(EngineDecision::Degraded {
                                    shard,
                                    fallback: nearest_landmark(&slot.landmarks, p),
                                });
                            }
                        }
                    }
                }
                ShardLane::Mailbox { tx, inflight } => {
                    let pts: Vec<Point> = group.iter().map(|&(_, p)| p).collect();
                    let (reply_tx, reply_rx) = bounded(1);
                    inflight.fetch_add(1, Ordering::Relaxed);
                    match tx.try_send(Command::Batch {
                        destinations: pts,
                        reply: reply_tx,
                        arrival: Instant::now(),
                    }) {
                        Ok(()) => pending.push((shard, reply_rx, group)),
                        Err(TrySendError::Full(_)) => {
                            let prev = inflight.fetch_sub(1, Ordering::Relaxed);
                            self.note_shed(slot, group.len() as u64, prev.saturating_sub(1));
                            for (i, p) in group {
                                out[i] = Some(EngineDecision::Degraded {
                                    shard,
                                    fallback: nearest_landmark(&slot.landmarks, p),
                                });
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            inflight.fetch_sub(1, Ordering::Relaxed);
                            if self.closed.load(Ordering::Acquire) {
                                return Err(EngineClosed);
                            }
                            resubmit.extend(group);
                        }
                    }
                }
                ShardLane::Dead => {
                    self.note_shed(slot, group.len() as u64, 0);
                    for (i, p) in group {
                        out[i] = Some(EngineDecision::Degraded {
                            shard,
                            fallback: nearest_landmark(&slot.landmarks, p),
                        });
                    }
                }
            }
        }
        // Serve the fast-lane groups inline: one seat acquisition per
        // shard, decisions in submission order.
        for (shard, group) in inline {
            let slot = &table.shards[shard];
            let ShardLane::Fast {
                ring,
                seat,
                drift,
                health,
                ..
            } = &slot.lane
            else {
                unreachable!("inline groups come from fast lanes");
            };
            let arrival = Instant::now();
            {
                let mut seat = seat.lock().expect("seat not poisoned");
                // One seat acquisition serves the whole group, so the
                // group shares one recorded seat wait.
                let group_queue_ns = health.as_ref().map(|_| elapsed_ns(arrival));
                let state = &mut *seat;
                if state.moved {
                    // The group's ring claims drain harmlessly on the
                    // retired ring; route the items through the retry
                    // path one by one.
                    resubmit.extend(group);
                    continue;
                }
                let system = state.system.as_mut().ok_or(EngineClosed)?;
                for (i, p) in group {
                    // Same drift handoff as `serve_fast`: verdicts land
                    // before the decision, boundary re-tests leave after.
                    if let Some((verdict, eval_ns)) = drift.take_verdict() {
                        system.commit_drift_verdict(verdict);
                        if let Some(t) = state.telemetry.as_mut() {
                            t.observe_deferred_retest(eval_ns);
                        }
                    }
                    let decision = system
                        .handle_request(p)
                        .expect("shard systems are bootstrapped at engine start");
                    if let Some(wal) = &slot.wal {
                        wal.lock()
                            .expect("wal not poisoned")
                            .record(EventKind::RequestAdmitted { x: p.x, y: p.y });
                    }
                    let latency_ns = elapsed_ns(arrival);
                    state.latency.record_ns(latency_ns);
                    if let Some(t) = state.telemetry.as_mut() {
                        t.on_decision(system, &decision, latency_ns, None);
                    }
                    if let (Some(plane), Some(hslot)) = (&self.health, health) {
                        hslot.note_decision();
                        plane.flights().record(FlightSample {
                            t_ns: elapsed_ns(self.epoch),
                            shard: shard as u32,
                            latency_ns,
                            queue_ns: group_queue_ns.unwrap_or(0),
                            ring_occupancy: ring.occupancy().min(u64::from(u32::MAX)) as u32,
                            shed: false,
                        });
                    }
                    if let Some(task) = system.take_drift_task() {
                        drift.offer(task);
                    }
                    out[i] = Some(EngineDecision::Served { shard, decision });
                }
                if let (Some(_), Some(hslot)) = (&self.health, health) {
                    if hslot.registry_requested() {
                        hslot.offer_registry(
                            state.telemetry.as_ref().map(|t| t.registry().snapshot()),
                        );
                    }
                }
                slot.view
                    .publish(&system.decision_view().expect("bootstrapped system"));
            }
        }
        for (shard, reply_rx, group) in pending {
            match reply_rx.recv() {
                Ok(decisions) => {
                    debug_assert_eq!(decisions.len(), group.len());
                    for ((i, _), decision) in group.into_iter().zip(decisions) {
                        out[i] = Some(EngineDecision::Served { shard, decision });
                    }
                }
                Err(_) => {
                    if self.closed.load(Ordering::Acquire) {
                        return Err(EngineClosed);
                    }
                    resubmit.extend(group);
                }
            }
        }
        for (i, p) in resubmit {
            out[i] = Some(self.submit(p)?);
        }
        Ok(out
            .into_iter()
            .map(|d| d.expect("every batch position is filled"))
            .collect())
    }

    /// Fire-and-forget admission; see [`Engine::submit_nowait`].
    pub(crate) fn submit_nowait(&self, destination: Point) -> Result<Admission, EngineClosed> {
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(EngineClosed);
            }
            let table = self.table();
            let shard = table.map.shard_of(destination);
            let slot = &table.shards[shard];
            match &slot.lane {
                ShardLane::Fast { .. } => {
                    // The fast path's decision is synchronous either way; the
                    // caller merely discards it. Admission is still decided
                    // by the downstream ring.
                    match self.serve_fast(slot, shard, destination)? {
                        FastServe::Done(EngineDecision::Served { .. }) => {
                            return Ok(Admission::Accepted { shard })
                        }
                        FastServe::Done(EngineDecision::Degraded { .. }) => {
                            return Ok(Admission::Shed { shard })
                        }
                        FastServe::Moved => {
                            std::thread::yield_now();
                            continue;
                        }
                    }
                }
                ShardLane::Mailbox { tx, inflight } => {
                    inflight.fetch_add(1, Ordering::Relaxed);
                    match tx.try_send(Command::Request {
                        destination,
                        reply: None,
                        arrival: Instant::now(),
                    }) {
                        Ok(()) => return Ok(Admission::Accepted { shard }),
                        Err(TrySendError::Full(_)) => {
                            let prev = inflight.fetch_sub(1, Ordering::Relaxed);
                            self.note_shed(slot, 1, prev.saturating_sub(1));
                            return Ok(Admission::Shed { shard });
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            inflight.fetch_sub(1, Ordering::Relaxed);
                            if self.closed.load(Ordering::Acquire) {
                                return Err(EngineClosed);
                            }
                            std::thread::yield_now();
                            continue;
                        }
                    }
                }
                ShardLane::Dead => {
                    self.note_shed(slot, 1, 0);
                    return Ok(Admission::Shed { shard });
                }
            }
        }
    }

    /// The last-published [`DecisionView`] of `shard`, or `None` before
    /// its first fast-path decision, on a dead slot, or after shutdown.
    pub(crate) fn decision_view(&self, shard: usize) -> Option<DecisionView> {
        if self.closed.load(Ordering::Acquire) {
            return None;
        }
        self.table().shards[shard].view.read()
    }

    /// Probes every shard — through the seat on fast lanes, through the
    /// mailbox on fallback lanes — and merges the parts. See
    /// [`Engine::snapshot`]. Restarts on a fresh table if a lifecycle
    /// operation moves a shard mid-probe.
    pub(crate) fn snapshot(&self) -> Result<EngineSnapshot, EngineClosed> {
        // Snapshot probes are serialized per thread, so the mailbox reply
        // channel is provably empty between calls — reuse one per thread
        // instead of allocating `bounded(1)` per probe (satellite of the
        // fast-path work: the snapshot path is allocation-free too).
        thread_local! {
            static PROBE_REPLY: (Sender<WorkerState>, Receiver<WorkerState>) = bounded(1);
        }
        'attempt: loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(EngineClosed);
            }
            let table = self.table();
            let mut shards = Vec::with_capacity(table.shards.len());
            let mut batches: Vec<(Option<usize>, Vec<Event>)> = Vec::new();
            let mut journals_dropped = 0u64;
            for (i, slot) in table.shards.iter().enumerate() {
                let state = match &slot.lane {
                    ShardLane::Fast { seat, .. } => {
                        let mut seat = seat.lock().expect("seat not poisoned");
                        let state = &mut *seat;
                        if state.moved {
                            std::thread::yield_now();
                            continue 'attempt;
                        }
                        let system = state.system.as_mut().ok_or(EngineClosed)?;
                        let probe = state.telemetry.as_mut().map(|t| {
                            // Tier-2 maintenance runs outside the request
                            // path; reconcile its dispatch counter at probe
                            // time.
                            t.observe_maintenance(system.metrics());
                            t.probe()
                        });
                        WorkerState {
                            server: ServerSnapshot {
                                stations: system.stations(),
                                placement: system.metrics().placement,
                                requests_served: system.metrics().requests_served,
                                latency: state.latency.clone(),
                            },
                            metrics: *system.metrics(),
                            last_similarity: system.last_similarity(),
                            telemetry: probe,
                        }
                    }
                    ShardLane::Mailbox { tx, .. } => {
                        let probed = PROBE_REPLY.with(|(reply_tx, reply_rx)| {
                            tx.send(Command::Snapshot {
                                reply: reply_tx.clone(),
                            })
                            .ok()?;
                            reply_rx.recv().ok()
                        });
                        match probed {
                            Some(state) => state,
                            None => {
                                if self.closed.load(Ordering::Acquire) {
                                    return Err(EngineClosed);
                                }
                                // Lifecycle kill between table load and
                                // probe: retry on the fresh table.
                                std::thread::yield_now();
                                continue 'attempt;
                            }
                        }
                    }
                    // A dead shard reports zeros (its durable state lives
                    // in the stored checkpoint + WAL) plus the carried
                    // router-side counters below.
                    ShardLane::Dead => WorkerState {
                        server: ServerSnapshot {
                            stations: Vec::new(),
                            placement: esharing_placement::PlacementCost::ZERO,
                            requests_served: 0,
                            latency: LatencyHistogram::new(),
                        },
                        metrics: SystemMetrics::default(),
                        last_similarity: None,
                        telemetry: None,
                    },
                };
                let probe = state.telemetry.unwrap_or_else(TelemetryProbe::empty);
                journals_dropped += probe.events_dropped;
                if !probe.events.is_empty() {
                    batches.push((Some(i), probe.events));
                }
                shards.push(ShardSnapshot {
                    shard: i,
                    anchor: table.map.anchor(i),
                    server: state.server,
                    metrics: state.metrics,
                    last_similarity: state.last_similarity,
                    shed: slot.shed.load(Ordering::Relaxed),
                    last_shed_depth: slot.last_shed_depth.load(Ordering::Relaxed),
                    pending_downstream: slot.pending(),
                    registry: probe.registry,
                });
            }
            {
                let mut journal = self.shed_journal.lock().expect("shed journal not poisoned");
                journals_dropped += journal.dropped();
                let drained = journal.drain();
                if !drained.is_empty() {
                    batches.push((None, drained));
                }
            }
            if let Some(h) = &self.health {
                // SLO breach/recover events ride the fleet log like any
                // router-side journal.
                journals_dropped += h.journal_dropped();
                let drained = h.drain_events();
                if !drained.is_empty() {
                    batches.push((None, drained));
                }
            }
            let mut snap = EngineSnapshot::from_shards(shards);
            snap.shards_active = table.shards.iter().filter(|s| s.alive()).count();
            snap.lifecycle = self.ops.totals();
            if let Some(h) = &self.health {
                snap.slo = h.statuses();
            }
            let mut log = self.events.lock().expect("event log not poisoned");
            log.absorb(batches);
            snap.events = log.records().to_vec();
            snap.events_dropped = journals_dropped + log.dropped();
            if self.telemetry_enabled {
                snap.registry
                    .merge_from(&crate::aggregate::lifecycle_registry(
                        snap.shards_active as u64,
                        &snap.lifecycle,
                    ));
                snap.registry
                    .merge_from(&crate::aggregate::journal_registry(snap.events_dropped));
                let reopt_stats = self.reopt.as_ref().map(|r| r.stats()).unwrap_or_default();
                snap.registry
                    .merge_from(&crate::aggregate::reopt_registry(&reopt_stats));
                if let Some(h) = &self.health {
                    snap.registry.merge_from(&h.burn_registry());
                }
            }
            return Ok(snap);
        }
    }
}

/// The zone-sharded serving engine.
///
/// Partitions the city with a [`ShardMap`], bootstraps one independent
/// [`ESharing`] pipeline per zone on that zone's slice of history, and
/// routes live destinations to their zone's worker over bounded mailboxes.
/// All methods take `&self`, so any number of client threads can share one
/// engine reference.
///
/// With [`EngineConfig::lifecycle`] enabled the shard set is *elastic*:
/// shards checkpoint their full decision state, journal admitted requests
/// to a write-ahead log, and can be split, merged, killed, and recovered
/// live — see the lifecycle methods ([`Engine::split_shard`],
/// [`Engine::merge_shards`], [`Engine::kill_shard`],
/// [`Engine::recover_shard`], [`Engine::lifecycle_tick`]).
///
/// # Examples
///
/// ```
/// use esharing_engine::{Engine, EngineConfig, Partition};
/// use esharing_geo::Point;
///
/// let history: Vec<Point> = (0..400)
///     .map(|i| Point::new((i % 20) as f64 * 150.0, (i / 20) as f64 * 150.0))
///     .collect();
/// let engine = Engine::start(
///     &history,
///     EngineConfig {
///         shards: 4,
///         partition: Partition::UniformGrid,
///         ..EngineConfig::default()
///     },
/// );
/// let outcome = engine.submit(Point::new(310.0, 310.0)).unwrap();
/// assert!(!outcome.degraded());
/// let snapshot = engine.snapshot().unwrap();
/// assert_eq!(snapshot.metrics.requests_served, 1);
/// let _systems = engine.shutdown();
/// ```
pub struct Engine {
    pub(crate) shared: Arc<EngineShared>,
}

/// Per-shard worker thread handle, matching the shard's [`ShardLane`].
pub(crate) enum WorkerHandle {
    /// Mailbox worker: owns its system and returns it at shutdown.
    Mailbox(JoinHandle<ESharing>),
    /// Fast-path drain worker: paces the emulated downstream ring; the
    /// system lives in the seat, not the thread.
    Fast {
        handle: JoinHandle<()>,
        stop: Arc<AtomicBool>,
    },
}

/// Everything needed to bring one shard slot online: the (restored or
/// freshly bootstrapped) system plus the counters and durability state it
/// carries over from a previous incarnation.
pub(crate) struct SlotSpec {
    pub(crate) system: ESharing,
    pub(crate) latency: LatencyHistogram,
    pub(crate) landmarks: Vec<Point>,
    pub(crate) shed: u64,
    pub(crate) last_shed_depth: u64,
    pub(crate) wal: Option<Arc<Mutex<EventJournal>>>,
    pub(crate) checkpoint: Option<Vec<u8>>,
    pub(crate) wal_high_water: u64,
    pub(crate) reopt_epoch: u64,
    pub(crate) landmark_swaps: u64,
    pub(crate) bootstrap_mass: u64,
}

/// Builds a live slot for `spec` per the configured decision path,
/// spawning its worker thread. `shard` is the slot's position in the
/// table being built (health series are stamped with it); `health` wires
/// the slot's drain worker into the fleet health plane when present.
pub(crate) fn spawn_slot(
    cfg: &EngineConfig,
    epoch: Instant,
    shard: usize,
    health: Option<Arc<HealthPlane>>,
    spec: SlotSpec,
) -> Arc<ShardSlot> {
    let telemetry = cfg
        .telemetry
        .enabled
        .then(|| WorkerTelemetry::new(&cfg.telemetry, epoch));
    let (lane, worker) = match cfg.decision_path {
        DecisionPath::SyncShared => {
            let ring = Arc::new(DownstreamRing::new(cfg.queue_capacity));
            let stop = Arc::new(AtomicBool::new(false));
            let drift = Arc::new(DriftSlot::new());
            let health_slot = health.as_ref().map(|_| Arc::new(HealthSlot::new()));
            let pump = health
                .as_ref()
                .zip(health_slot.as_ref())
                .map(|(plane, slot)| HealthHandle {
                    plane: Arc::clone(plane),
                    slot: Arc::clone(slot),
                    shard,
                });
            let handle = shard::spawn_fast(
                Arc::clone(&ring),
                Arc::clone(&stop),
                Arc::clone(&drift),
                cfg.service_delay,
                epoch,
                pump,
            );
            let lane = ShardLane::Fast {
                ring,
                seat: Mutex::new(Box::new(SeatState {
                    system: Some(spec.system),
                    telemetry,
                    latency: spec.latency,
                    moved: false,
                })),
                trace_tick: AtomicU64::new(0),
                drift,
                health: health_slot,
            };
            (lane, WorkerHandle::Fast { handle, stop })
        }
        DecisionPath::Mailbox => {
            let (tx, rx) = bounded::<Command>(cfg.queue_capacity);
            let inflight = Arc::new(AtomicU64::new(0));
            let handle = shard::spawn(
                spec.system,
                rx,
                cfg.service_delay,
                telemetry,
                Arc::clone(&inflight),
                spec.wal.clone(),
                spec.latency,
            );
            (
                ShardLane::Mailbox { tx, inflight },
                WorkerHandle::Mailbox(handle),
            )
        }
    };
    Arc::new(ShardSlot {
        lane,
        landmarks: spec.landmarks,
        shed: AtomicU64::new(spec.shed),
        last_shed_depth: AtomicU64::new(spec.last_shed_depth),
        view: DecisionViewCell::new(),
        wal: spec.wal,
        checkpoint: Mutex::new(spec.checkpoint),
        wal_high_water: AtomicU64::new(spec.wal_high_water),
        reopt_epoch: AtomicU64::new(spec.reopt_epoch),
        landmark_swaps: AtomicU64::new(spec.landmark_swaps),
        bootstrap_mass: spec.bootstrap_mass,
        worker: Mutex::new(Some(worker)),
    })
}

impl Engine {
    /// Partitions `history`, bootstraps one system per shard, and spawns
    /// the workers.
    ///
    /// # Panics
    ///
    /// Panics if `history` is empty or the configuration is invalid.
    pub fn start(history: &[Point], cfg: EngineConfig) -> Self {
        cfg.validate();
        assert!(!history.is_empty(), "historical window must be non-empty");
        let map = Self::build_map(history, &cfg);
        let shard_count = map.shard_count();
        // One epoch instant for the whole fleet: every journal (shard
        // workers and the router's shed journal) timestamps against it,
        // so drained events merge into one comparable timeline. The fast
        // path's downstream ring stamps arrivals against it too.
        let epoch = Instant::now();
        let health = cfg
            .health
            .enabled
            .then(|| Arc::new(HealthPlane::new(&cfg.health, cfg.telemetry.enabled, epoch)));
        // Slice the history by zone, preserving stream order within each.
        let mut parts: Vec<Vec<Point>> = vec![Vec::new(); shard_count];
        for &p in history {
            parts[map.shard_of(p)].push(p);
        }
        let mut slots = Vec::with_capacity(shard_count);
        for (i, mut part) in parts.into_iter().enumerate() {
            if part.len() < cfg.min_shard_history {
                part = nearest_points(history, map.anchor(i), cfg.min_shard_history);
            }
            let mut system_cfg = cfg.system.clone();
            system_cfg.seed ^= i as u64;
            system_cfg.deviation.seed ^= i as u64;
            let mut system = ESharing::new(system_cfg);
            let bootstrap_mass = part.len() as u64;
            system.bootstrap(&part);
            let landmarks = system.landmarks().to_vec();
            // With the lifecycle enabled every shard starts durable: a
            // fresh WAL plus an immediate checkpoint, so a kill at *any*
            // later point can recover by replaying the full WAL suffix.
            let (wal, checkpoint) = if cfg.lifecycle.enabled {
                let wal = Arc::new(Mutex::new(EventJournal::new(
                    cfg.lifecycle.wal_capacity,
                    epoch,
                )));
                let initial = encode_checkpoint(&system, &LatencyHistogram::new(), 0, 0, 0);
                (Some(wal), initial)
            } else {
                (None, None)
            };
            slots.push(spawn_slot(
                &cfg,
                epoch,
                i,
                health.clone(),
                SlotSpec {
                    system,
                    latency: LatencyHistogram::new(),
                    landmarks,
                    shed: 0,
                    last_shed_depth: 0,
                    wal,
                    checkpoint,
                    wal_high_water: 0,
                    reopt_epoch: 0,
                    landmark_swaps: 0,
                    bootstrap_mass,
                },
            ));
        }
        let sample_period = u64::from(cfg.telemetry.sample_period()).max(1);
        let table = Arc::new(RouterTable { map, shards: slots });
        let reopt = cfg
            .reopt
            .enabled
            .then(|| Arc::new(ReoptRuntime::new(cfg.reopt.clone(), &table)));
        let shared = Arc::new(EngineShared {
            table: Mutex::new(table),
            closed: AtomicBool::new(false),
            telemetry_enabled: cfg.telemetry.enabled,
            sample_period,
            epoch,
            shed_journal: Mutex::new(EventJournal::new(cfg.telemetry.journal_capacity, epoch)),
            events: Mutex::new(EventLog::new(
                cfg.telemetry.journal_capacity * (shard_count + 1),
            )),
            gate: Mutex::new(PolicyState::default()),
            ops: OpCounters::default(),
            health,
            reopt,
            reopt_worker: Mutex::new(None),
            cfg,
        });
        *shared
            .reopt_worker
            .lock()
            .expect("reopt worker slot not poisoned") = crate::reopt::spawn_reopt_worker(&shared);
        Engine { shared }
    }

    fn build_map(history: &[Point], cfg: &EngineConfig) -> ShardMap {
        match cfg.partition {
            Partition::UniformGrid => {
                let bbox = BBox::from_points(history.iter().copied())
                    .expect("non-empty history has a bounding box");
                ShardMap::uniform(bbox, cfg.shards)
            }
            Partition::LandmarkVoronoi => {
                // The same offline pipeline the orchestrator bootstraps
                // with, run once globally to place the shard anchors where
                // the demand is.
                let grid = Grid::new(cfg.system.grid_cell_m);
                let mut centroids = grid.weighted_centroids(history.iter().copied());
                centroids.sort_by_key(|c| std::cmp::Reverse(c.1));
                centroids.truncate(cfg.system.max_candidate_cells);
                let instance =
                    PlpInstance::from_weighted_centroids(&centroids, cfg.system.space_cost_m);
                let solution = offline::jms_greedy(&instance);
                let landmarks = solution.facility_points(&instance);
                ShardMap::voronoi_over_landmarks(&landmarks, cfg.shards)
            }
        }
    }

    /// The destination → shard map in force at call time. Owned, because
    /// lifecycle operations swap the live table: the returned map is a
    /// consistent snapshot that later splits/merges do not mutate.
    pub fn map(&self) -> ShardMap {
        self.shared.table().map.clone()
    }

    /// Realized shard count (dead slots included until recovered).
    pub fn shard_count(&self) -> usize {
        self.shared.table().shards.len()
    }

    /// Submits a destination and waits for the decision. Never blocks on
    /// an overloaded shard: if the shard's pending queue (downstream ring
    /// on the fast path, mailbox on the fallback) is full the request is
    /// shed immediately with [`EngineDecision::Degraded`].
    ///
    /// On the default [`DecisionPath::SyncShared`] the decision is
    /// computed **inline on the calling thread** under the shard's seat —
    /// no thread handoff, no reply channel. If a lifecycle operation
    /// (split/merge/kill) retires the shard mid-flight the submit
    /// transparently reroutes through the new table; requests are never
    /// dropped by an elastic transition.
    ///
    /// # Errors
    ///
    /// Returns [`EngineClosed`] if the engine has shut down.
    pub fn submit(&self, destination: Point) -> Result<EngineDecision, EngineClosed> {
        self.shared.submit(destination)
    }

    /// Submits a whole batch of destinations and waits for all decisions,
    /// returned in the input order.
    ///
    /// The router groups the batch by shard (preserving each shard's
    /// submission subsequence). On the fast path each group claims its
    /// downstream-ring slots as one unit and is then decided inline under
    /// a single seat acquisition; on the mailbox fallback each group moves
    /// through its mailbox as **one** command with **one** reply. Either
    /// way a client holding `n` requests pays `O(shards)` synchronization
    /// operations instead of `O(n)`. Decisions are bit-identical to
    /// submitting the same destinations one at a time from a single
    /// thread: shards are independent and each serves its items in the
    /// same order through the same serialized path.
    ///
    /// Admission control still never blocks: a shard whose queue cannot
    /// take the whole group sheds its *entire* sub-batch — every one of
    /// its items comes back [`EngineDecision::Degraded`] and counts toward
    /// [`Engine::shed`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineClosed`] if the engine has shut down.
    pub fn submit_batch(
        &self,
        destinations: &[Point],
    ) -> Result<Vec<EngineDecision>, EngineClosed> {
        self.shared.submit_batch(destinations)
    }

    /// Fire-and-forget submit: admits the request without the caller
    /// inspecting the decision (it still lands in the shard's metrics),
    /// shedding if the shard's pending queue is full. This is the
    /// load-generator path. On the fast path the decision is still
    /// computed synchronously — only the *downstream* fetch is deferred
    /// to the drain worker.
    ///
    /// # Errors
    ///
    /// Returns [`EngineClosed`] if the engine has shut down.
    pub fn submit_nowait(&self, destination: Point) -> Result<Admission, EngineClosed> {
        self.shared.submit_nowait(destination)
    }

    /// The last [`DecisionView`] `shard` published through its seqlock
    /// cell — a lock-free monitoring read that never touches the seat.
    /// `None` until the shard's first fast-path decision, while the shard
    /// is dead, or after the engine shut down (the mailbox fallback never
    /// publishes).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn decision_view(&self, shard: usize) -> Option<DecisionView> {
        self.shared.decision_view(shard)
    }

    /// Requests shed so far by `shard`'s admission control.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shed(&self, shard: usize) -> u64 {
        self.shared.table().shards[shard]
            .shed
            .load(Ordering::Relaxed)
    }

    /// Requests shed so far across all shards.
    pub fn shed_total(&self) -> u64 {
        self.shared
            .table()
            .shards
            .iter()
            .map(|s| s.shed.load(Ordering::Relaxed))
            .sum()
    }

    /// Collects a consistent-enough fleet snapshot: each shard is probed
    /// through its own mailbox (so per-shard state is internally
    /// consistent), then the parts are merged into fleet totals. The probe
    /// queues behind in-flight requests; it blocks until the shard drains
    /// to it, applying ordinary backpressure rather than shedding.
    ///
    /// Each probe also drains the shards' event journals into the
    /// engine's bounded fleet log, so [`EngineSnapshot::events`] carries
    /// the merged, time-ordered recent history regardless of which caller
    /// (snapshot or HTTP scrape) probed last.
    ///
    /// # Errors
    ///
    /// Returns [`EngineClosed`] if the engine has shut down.
    pub fn snapshot(&self) -> Result<EngineSnapshot, EngineClosed> {
        self.shared.snapshot()
    }

    /// Current SLO verdicts, one per configured rule in rule order.
    /// Empty while the health plane is disabled.
    pub fn slo_statuses(&self) -> Vec<esharing_telemetry::SloStatus> {
        self.shared
            .health
            .as_ref()
            .map(|h| h.statuses())
            .unwrap_or_default()
    }

    /// Retained flight-recorder dump ids, oldest first (empty while the
    /// health plane is disabled or nothing has triggered a dump).
    pub fn flight_ids(&self) -> Vec<String> {
        self.shared
            .health
            .as_ref()
            .map(|h| h.flight_ids())
            .unwrap_or_default()
    }

    /// The frozen flight dump document for `id` — the same JSON served at
    /// `/flight/<id>`.
    pub fn flight_dump(&self, id: &str) -> Option<String> {
        self.shared.health.as_ref()?.flight(id)
    }

    /// Total flight dumps frozen so far (lifetime count; retained dumps
    /// are capped, so this can exceed `flight_ids().len()`).
    pub fn flight_dump_count(&self) -> usize {
        self.shared
            .health
            .as_ref()
            .map(|h| h.dump_count())
            .unwrap_or_default()
    }

    /// A detached scrape source for the telemetry HTTP responder. Holds
    /// only a weak reference: once the engine is dropped or shut down,
    /// scrapes return `None` and the responder answers 503.
    pub fn scrape_source(&self) -> EngineScrapeSource {
        EngineScrapeSource {
            shared: Arc::downgrade(&self.shared),
        }
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves this engine's
    /// telemetry over HTTP (`/metrics` Prometheus text, `/metrics.json`,
    /// `/events`) for as long as the returned server lives. The engine
    /// remains fully usable; scrapes ride the ordinary snapshot path.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve_telemetry(&self, addr: &str) -> std::io::Result<MetricsServer> {
        MetricsServer::start(addr, Arc::new(self.scrape_source()))
    }

    /// Stops every worker and returns the final per-shard systems, in
    /// shard order. Dead (killed, unrecovered) shards contribute nothing;
    /// their durable state remains in their checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn shutdown(self) -> Vec<ESharing> {
        self.shared.closed.store(true, Ordering::Release);
        // Join the re-optimization thread *before* taking the gate: a
        // pass in flight holds (or is about to take) the gate itself,
        // and exits at its next quantum once `closed` is visible.
        if let Some(worker) = self
            .shared
            .reopt_worker
            .lock()
            .expect("reopt worker slot not poisoned")
            .take()
        {
            worker.thread().unpark();
            worker
                .join()
                .expect("reopt maintenance thread must not panic");
        }
        // Waits for any in-flight lifecycle operation, and blocks new
        // ones (they check `closed` under this gate).
        let _gate = self.shared.gate.lock();
        let table = self.shared.table();
        let mut out = Vec::with_capacity(table.shards.len());
        for slot in &table.shards {
            let worker = slot.worker.lock().expect("worker slot not poisoned").take();
            match (worker, &slot.lane) {
                (Some(WorkerHandle::Mailbox(handle)), ShardLane::Mailbox { tx, .. }) => {
                    let _ = tx.send(Command::Shutdown);
                    out.push(handle.join().expect("shard worker must not panic"));
                }
                (Some(WorkerHandle::Fast { handle, stop }), ShardLane::Fast { seat, .. }) => {
                    // The drain worker exits once the ring is empty,
                    // so joining it first guarantees every accepted
                    // request's downstream fetch completed.
                    stop.store(true, Ordering::Release);
                    handle.join().expect("shard drain worker must not panic");
                    // Taking the system out of the seat closes the seat
                    // for shared handles already past the closed check.
                    out.push(
                        seat.lock()
                            .expect("seat not poisoned")
                            .system
                            .take()
                            .expect("system present until shutdown"),
                    );
                }
                (None, ShardLane::Dead) => {}
                _ => unreachable!("worker handle kind always matches its lane"),
            }
        }
        out
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        // Same ordering as `shutdown`: the maintenance thread first
        // (it takes the gate; joining under it would deadlock), then
        // the gate, then the workers.
        if let Some(worker) = self
            .shared
            .reopt_worker
            .lock()
            .ok()
            .and_then(|mut w| w.take())
        {
            worker.thread().unpark();
            let _ = worker.join();
        }
        // Hold the gate if possible (ignore poisoning — drop must not
        // panic) so no lifecycle operation races the teardown.
        let _gate = self.shared.gate.lock();
        let table = self.shared.table();
        for slot in &table.shards {
            let worker = slot.worker.lock().ok().and_then(|mut w| w.take());
            match (worker, &slot.lane) {
                (Some(WorkerHandle::Mailbox(handle)), ShardLane::Mailbox { tx, .. }) => {
                    let _ = tx.send(Command::Shutdown);
                    let _ = handle.join();
                }
                (Some(WorkerHandle::Fast { handle, stop }), ShardLane::Fast { seat, .. }) => {
                    stop.store(true, Ordering::Release);
                    let _ = handle.join();
                    if let Ok(mut seat) = seat.lock() {
                        // Close the seat so shared handles (scrape
                        // sources) observe `EngineClosed` from now on.
                        let _ = seat.system.take();
                    }
                }
                _ => {}
            }
        }
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let table = self.shared.table();
        f.debug_struct("Engine")
            .field("shards", &table.shards.len())
            .field("map", &table.map)
            .field("shed_total", &self.shed_total())
            .finish()
    }
}

/// [`ScrapeSource`] over a weak engine reference, so the HTTP responder
/// never keeps a shut-down engine alive. Obtained from
/// [`Engine::scrape_source`]; consumed by
/// [`MetricsServer`](esharing_telemetry::MetricsServer) (usually via
/// [`Engine::serve_telemetry`]).
pub struct EngineScrapeSource {
    shared: Weak<EngineShared>,
}

impl ScrapeSource for EngineScrapeSource {
    fn scrape(&self) -> Option<Scrape> {
        let shared = self.shared.upgrade()?;
        let snap = shared.snapshot().ok()?;
        Some(Scrape {
            families: snap.to_families(),
            events: snap.events,
            events_dropped: snap.events_dropped,
        })
    }

    fn flight(&self, id: &str) -> Option<String> {
        self.shared.upgrade()?.health.as_ref()?.flight(id)
    }

    fn flight_ids(&self) -> Vec<String> {
        self.shared
            .upgrade()
            .and_then(|s| s.health.as_ref().map(|h| h.flight_ids()))
            .unwrap_or_default()
    }
}

/// The `count` nearest points of `history` to `anchor`, stable on ties.
fn nearest_points(history: &[Point], anchor: Point, count: usize) -> Vec<Point> {
    let mut indexed: Vec<(f64, usize)> = history
        .iter()
        .enumerate()
        .map(|(i, p)| (p.distance_squared(anchor), i))
        .collect();
    indexed.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    indexed
        .into_iter()
        .take(count)
        .map(|(_, i)| history[i])
        .collect()
}

/// Nearest offline landmark to `destination` (landmark sets are small and
/// immutable, so a linear scan beats an index here).
pub(crate) fn nearest_landmark(landmarks: &[Point], destination: Point) -> Point {
    let mut best = landmarks[0];
    let mut best_d = f64::INFINITY;
    for &l in landmarks {
        let d = l.distance_squared(destination);
        if d < best_d {
            best = l;
            best_d = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_history() -> Vec<Point> {
        // Four tight demand clusters in a 2 km field.
        let centers = [
            Point::new(300.0, 300.0),
            Point::new(1700.0, 300.0),
            Point::new(300.0, 1700.0),
            Point::new(1700.0, 1700.0),
        ];
        let mut out = Vec::new();
        for i in 0..400 {
            let c = centers[i % 4];
            let jitter = Point::new(((i * 37) % 100) as f64, ((i * 53) % 100) as f64);
            out.push(c + jitter);
        }
        out
    }

    #[test]
    fn start_partitions_and_serves() {
        let engine = Engine::start(
            &clustered_history(),
            EngineConfig {
                shards: 4,
                partition: Partition::UniformGrid,
                ..EngineConfig::default()
            },
        );
        assert_eq!(engine.shard_count(), 4);
        for i in 0..200 {
            let p = Point::new(((i * 97) % 2000) as f64, ((i * 31) % 2000) as f64);
            let d = engine.submit(p).unwrap();
            assert!(!d.degraded());
            assert_eq!(d.shard(), engine.map().shard_of(p));
        }
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.metrics.requests_served, 200);
        assert_eq!(snap.shed_total, 0);
        assert_eq!(snap.shards_active, 4);
        // Telemetry rides along: the scraped decision counter equals the
        // fleet metric total exactly (counters are unsampled).
        assert_eq!(snap.registry.counter_total("esharing_decisions_total"), 200);
        // The lifecycle families are exported even while the subsystem is
        // disabled, so dashboards need no conditional wiring.
        assert_eq!(snap.registry.gauge("esharing_shards_active"), Some(4.0));
        assert_eq!(
            snap.registry.counter_total("esharing_lifecycle_ops_total"),
            0
        );
        let systems = engine.shutdown();
        assert_eq!(systems.len(), 4);
        let served: u64 = systems.iter().map(|s| s.metrics().requests_served).sum();
        assert_eq!(served, 200);
    }

    #[test]
    fn voronoi_partition_balances_clustered_demand() {
        let engine = Engine::start(
            &clustered_history(),
            EngineConfig {
                shards: 4,
                partition: Partition::LandmarkVoronoi,
                ..EngineConfig::default()
            },
        );
        // Landmark-derived anchors must split the four clusters apart.
        assert!(engine.shard_count() >= 2);
        let map = engine.map();
        let shards: Vec<usize> = clustered_history()
            .iter()
            .map(|&p| map.shard_of(p))
            .collect();
        let mut counts = vec![0usize; engine.shard_count()];
        for &s in &shards {
            counts[s] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= 400 * 3 / 4,
            "one shard swallowed the city: {counts:?}"
        );
    }

    #[test]
    fn sparse_zone_bootstraps_from_nearest_history() {
        // Nearly all history in one corner; the two far-corner sentinels
        // stretch the grid so three zones end up (almost) empty — they
        // must still come up and serve from nearest-history bootstraps.
        let mut history: Vec<Point> = (0..120)
            .map(|i| Point::new(((i * 13) % 300) as f64, ((i * 7) % 300) as f64))
            .collect();
        history.push(Point::new(2000.0, 2000.0));
        history.push(Point::new(1999.0, 1.0));
        let engine = Engine::start(
            &history,
            EngineConfig {
                shards: 4,
                partition: Partition::UniformGrid,
                ..EngineConfig::default()
            },
        );
        let d = engine.submit(Point::new(1900.0, 1900.0)).unwrap();
        assert!(!d.degraded());
    }

    #[test]
    fn every_entry_point_reports_closed_after_shutdown() {
        // The post-shutdown audit: submit, submit_batch, submit_nowait,
        // decision_view, and telemetry scrapes must all return clean
        // errors — no panic, no hang, no stale data — on both decision
        // paths, and must keep doing so long past `queue_capacity` calls
        // (a closed fast lane must not leak downstream-ring slots into a
        // `Degraded` verdict).
        for path in [DecisionPath::SyncShared, DecisionPath::Mailbox] {
            let history = clustered_history();
            let engine = Engine::start(
                &history,
                EngineConfig {
                    shards: 2,
                    partition: Partition::UniformGrid,
                    decision_path: path,
                    queue_capacity: 4,
                    ..EngineConfig::default()
                },
            );
            engine.submit(Point::new(300.0, 300.0)).unwrap();
            assert!(engine.decision_view(0).is_some() || path == DecisionPath::Mailbox);
            // A second handle onto the shared router state (this is what a
            // scrape source holds). After shutdown every entry point must
            // report closed rather than panic or hang.
            let shared = Arc::clone(&engine.shared);
            let scrape = engine.scrape_source();
            let _ = engine.shutdown();
            for _ in 0..16 {
                // > queue_capacity iterations: exhausting a leaked ring
                // would surface here as a Degraded instead of the error.
                assert_eq!(shared.submit(Point::ORIGIN), Err(EngineClosed), "{path:?}");
                assert_eq!(
                    shared.submit_nowait(Point::ORIGIN),
                    Err(EngineClosed),
                    "{path:?}"
                );
            }
            assert_eq!(
                shared.submit_batch(&[Point::ORIGIN, Point::new(1900.0, 1900.0)]),
                Err(EngineClosed),
                "{path:?}"
            );
            assert_eq!(shared.decision_view(0), None, "{path:?}");
            assert!(shared.snapshot().is_err(), "{path:?}");
            assert!(scrape.scrape().is_none(), "{path:?} scrape must 503");
        }
    }

    fn flood_one_shard(path: DecisionPath) {
        // One shard with a tiny pending queue and a slow downstream: the
        // flood of fire-and-forget submits must shed, record the observed
        // queue depth, and journal every shed.
        let engine = Engine::start(
            &clustered_history(),
            EngineConfig {
                shards: 1,
                partition: Partition::UniformGrid,
                decision_path: path,
                queue_capacity: 2,
                service_delay: Duration::from_millis(5),
                ..EngineConfig::default()
            },
        );
        let mut shed = 0u64;
        for i in 0..30 {
            let p = Point::new(((i * 97) % 2000) as f64, ((i * 31) % 2000) as f64);
            if let Admission::Shed { shard } = engine.submit_nowait(p).unwrap() {
                assert_eq!(shard, 0);
                shed += 1;
            }
        }
        assert!(shed > 0, "a 2-deep queue must shed under a 30-burst");
        assert_eq!(engine.shed(0), shed);
        assert_eq!(engine.shed_total(), shed);
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.shed_total, shed);
        assert_eq!(snap.shards[0].shed, shed);
        // The router saw a full queue: depth at shed time is bounded by
        // the capacity (the drain worker may advance concurrently, so it
        // can read lower, never higher).
        assert!(snap.shards[0].last_shed_depth <= 2);
        assert!(snap.shards[0].pending_downstream <= 2);
        assert_eq!(snap.registry.counter_total("esharing_sheds_total"), shed);
        // Every shed journalled router-side, with the observed depth.
        let shed_events: Vec<u64> = snap
            .events
            .iter()
            .filter(|r| r.shard.is_none())
            .filter_map(|r| match r.event.kind {
                EventKind::ShardShed { queue_depth } => Some(queue_depth),
                _ => None,
            })
            .collect();
        assert_eq!(shed_events.len() as u64, shed);
        assert!(shed_events.iter().all(|&d| d <= 2));
        if path == DecisionPath::SyncShared {
            // Fast-path decisions are synchronous: every accepted request
            // already landed in the shard's metrics, shed ones never did.
            assert_eq!(snap.metrics.requests_served, 30 - shed);
        }
    }

    #[test]
    fn overload_sheds_with_depth_and_journal() {
        flood_one_shard(DecisionPath::SyncShared);
    }

    #[test]
    fn overload_sheds_on_mailbox_fallback() {
        flood_one_shard(DecisionPath::Mailbox);
    }

    #[test]
    fn decision_view_publishes_after_fast_decisions() {
        let engine = Engine::start(
            &clustered_history(),
            EngineConfig {
                shards: 1,
                partition: Partition::UniformGrid,
                ..EngineConfig::default()
            },
        );
        assert!(
            engine.decision_view(0).is_none(),
            "no view before the first decision"
        );
        for i in 0..40 {
            let p = Point::new(((i * 97) % 2000) as f64, ((i * 31) % 2000) as f64);
            engine.submit(p).unwrap();
        }
        let view = engine.decision_view(0).expect("published after decisions");
        let snap = engine.snapshot().unwrap();
        // The seqlock view agrees with the authoritative seat state.
        assert_eq!(view.stations, snap.shards[0].server.stations.len());
        assert_eq!(view.last_similarity, snap.shards[0].last_similarity);
        assert!(view.decision_cost >= 0.0);
        assert!(view.window_len > 0, "live requests fill the KS window");
    }

    #[test]
    fn disabled_telemetry_yields_empty_registry_and_events() {
        let engine = Engine::start(
            &clustered_history(),
            EngineConfig {
                shards: 2,
                partition: Partition::UniformGrid,
                telemetry: TelemetryConfig::disabled(),
                ..EngineConfig::default()
            },
        );
        for i in 0..50 {
            let p = Point::new(((i * 97) % 2000) as f64, ((i * 31) % 2000) as f64);
            engine.submit(p).unwrap();
        }
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.metrics.requests_served, 50);
        assert!(snap.registry.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(snap.events_dropped, 0);
        assert!(snap.to_families().is_empty());
    }

    #[test]
    fn scrape_source_outlives_engine_as_503() {
        let engine = Engine::start(
            &clustered_history(),
            EngineConfig {
                shards: 1,
                partition: Partition::UniformGrid,
                ..EngineConfig::default()
            },
        );
        engine.submit(Point::new(500.0, 500.0)).unwrap();
        let source = engine.scrape_source();
        let scrape = source.scrape().expect("live engine scrapes");
        assert!(!scrape.families.is_empty());
        drop(engine);
        assert!(source.scrape().is_none(), "dropped engine must scrape None");
    }

    #[test]
    fn nearest_helpers_are_stable() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
        ];
        assert_eq!(
            nearest_points(&pts, Point::new(11.0, 0.0), 2),
            vec![Point::new(10.0, 0.0), Point::new(20.0, 0.0)]
        );
        assert_eq!(
            nearest_landmark(&pts, Point::new(19.0, 0.0)),
            Point::new(20.0, 0.0)
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_history_rejected() {
        let _ = Engine::start(&[], EngineConfig::default());
    }

    #[test]
    fn full_ring_on_retired_slot_bounces_instead_of_shedding() {
        // Regression: a submit racing a lifecycle swap used to shed
        // against the *retired* slot's landmarks when its ring was full,
        // because the ring-claim shed path ran before the moved-seat
        // check. It must bounce to the new table instead.
        let engine = Engine::start(
            &clustered_history(),
            EngineConfig {
                shards: 1,
                partition: Partition::UniformGrid,
                queue_capacity: 2,
                lifecycle: LifecycleConfig {
                    enabled: true,
                    ..LifecycleConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        for i in 0..64 {
            let p = Point::new(((i * 97) % 2000) as f64, ((i * 31) % 2000) as f64);
            engine.submit(p).unwrap();
        }
        // Hold the pre-swap table the way a racing submitter would, then
        // retire the seat through the moved-seat protocol (kill uses the
        // same handshake every lifecycle swap does).
        let stale = engine.shared.table();
        engine.kill_shard(0).expect("live shard kills");
        // The retired slot's drain worker has drained and stopped; fill
        // its ring so a straggler through the stale table takes the
        // claim-failure path.
        let ShardLane::Fast { ring, .. } = &stale.shards[0].lane else {
            unreachable!("fast path engine");
        };
        while ring.try_claim(0).is_ok() {}
        let shed_before = stale.shards[0].shed.load(Ordering::Relaxed);
        let got = engine
            .shared
            .serve_fast(&stale.shards[0], 0, Point::new(300.0, 300.0))
            .unwrap();
        assert!(
            matches!(got, FastServe::Moved),
            "retired slot must bounce to the new table, not shed"
        );
        assert_eq!(stale.shards[0].shed.load(Ordering::Relaxed), shed_before);
        // After recovery the ordinary submit path serves the same
        // destination through the fresh table.
        engine
            .recover_shard(0)
            .expect("checkpointed shard recovers");
        let d = engine.submit(Point::new(300.0, 300.0)).unwrap();
        assert!(!d.degraded());
    }
}
