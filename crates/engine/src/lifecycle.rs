//! Elastic shard lifecycle: live split/merge, checkpointing, and
//! journal-replay failover.
//!
//! With [`LifecycleConfig::enabled`] the engine's shard set stops being
//! fixed at start time:
//!
//! * every shard journals each admitted request to a bounded per-shard
//!   **write-ahead log** and periodically stores an encoded
//!   [`ShardCheckpoint`](crate::ShardCheckpoint) of its full decision
//!   state;
//! * a hot shard can be **split** live — its zone bisected at the median
//!   of observed demand, its stations/window/history partitioned by point
//!   membership, a new seat and drain ring spawned, and the router table
//!   swapped atomically — without dropping or reordering in-flight
//!   requests;
//! * two cold shards can be **merged** the same way;
//! * a **killed** shard keeps serving degraded (offline-landmark
//!   fallbacks) from a dead slot until [`Engine::recover_shard`] restores
//!   the last checkpoint and replays the WAL suffix past its high-water
//!   sequence, reconverging **bit-identically** with a shard that was
//!   never killed.
//!
//! The split/merge/kill commit protocol is the *moved-seat* handshake: the
//! operation locks the retiring seat(s), flips `moved`, takes the system
//! out, and swaps the router table while still holding the seat. Any
//! submitter blocked on that seat wakes, observes `moved`, and transparently
//! re-routes through the new table — the request is served by whichever
//! shard now owns its destination, never dropped. All lifecycle operations
//! serialize on one gate mutex, and the lock order is always
//! gate → seat(s) in index order → router table (held only for the swap),
//! so there is no hold-and-wait cycle with the submit paths (which take
//! the table briefly, release it, then take one seat).
//!
//! [`Engine::lifecycle_tick`] is the policy pump: callers (a bench driver,
//! an operations loop) invoke it at their own cadence; it auto-checkpoints
//! shards whose WAL ran `checkpoint_every` entries past the last image and
//! applies hysteresis-filtered split/merge decisions from shed deltas and
//! the `pending_downstream` occupancy gauge. There is no background
//! thread: the tick is deterministic and test-drivable.

use crate::checkpoint::{encode_checkpoint, ShardCheckpoint};
use crate::engine::{
    spawn_slot, DecisionPath, Engine, EngineShared, RouterTable, ShardLane, ShardSlot, SlotSpec,
    WorkerHandle,
};
use crate::fastpath::DecisionViewCell;
use crate::shard::Command;
use crate::shard_map::Axis;
use crossbeam::channel::bounded;
use esharing_core::{ESharing, SystemCheckpoint, SystemMetrics};
use esharing_geo::Point;
use esharing_placement::online::DeviationCheckpoint;
use esharing_telemetry::{EventJournal, EventKind};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Elastic-lifecycle knobs; a field of
/// [`EngineConfig`](crate::EngineConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleConfig {
    /// Master switch. Disabled (the default), shards carry no WAL, no
    /// checkpoints are taken, and every lifecycle control method returns
    /// [`LifecycleError::LifecycleDisabled`]; the request path is exactly
    /// the static engine's.
    pub enabled: bool,
    /// A shard whose pending-downstream occupancy reaches this fraction
    /// of [`queue_capacity`](crate::EngineConfig::queue_capacity) (or
    /// that shed since the previous tick) counts as *hot*; after
    /// [`hysteresis_ticks`](LifecycleConfig::hysteresis_ticks) consecutive
    /// hot ticks the policy splits it.
    pub split_occupancy: f64,
    /// A shard at or below this occupancy fraction with no new sheds
    /// counts as *cold*; two shards cold for
    /// [`hysteresis_ticks`](LifecycleConfig::hysteresis_ticks) get merged.
    pub merge_occupancy: f64,
    /// Consecutive ticks a pressure signal must persist before the policy
    /// acts on it — the hysteresis that keeps a bursty workload from
    /// thrashing split/merge.
    pub hysteresis_ticks: u32,
    /// Auto-checkpoint cadence: a tick re-checkpoints any shard whose WAL
    /// has grown this many entries past its stored image.
    pub checkpoint_every: u64,
    /// Per-shard WAL capacity in entries (bounded, drop-oldest). Must
    /// comfortably exceed `checkpoint_every`, or a kill could land after
    /// the replay suffix was already dropped ([`LifecycleError::WalGap`]).
    pub wal_capacity: usize,
    /// The policy never merges below this many shards.
    pub min_shards: usize,
    /// The policy never splits above this many shards.
    pub max_shards: usize,
    /// Derive the hot/cold pressure signals from the health plane's
    /// time-series store instead of instantaneous ring occupancy: the
    /// occupancy signal becomes the window mean **projected forward** by
    /// the observed slope (catching a ramp before it saturates), and the
    /// shed signal becomes the shed-counter delta over the whole window
    /// (immune to the tick cadence racing the burst). Requires
    /// [`HealthConfig::enabled`](crate::HealthConfig); shards without
    /// trend data yet fall back to the instantaneous signals, as does the
    /// whole policy when the flag is off (the default).
    pub trend_policy: bool,
    /// Lookback window for [`trend_policy`](LifecycleConfig::trend_policy)
    /// signals, in milliseconds.
    pub trend_window_ms: u64,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            enabled: false,
            split_occupancy: 0.75,
            merge_occupancy: 0.05,
            hysteresis_ticks: 3,
            checkpoint_every: 1024,
            wal_capacity: 16384,
            min_shards: 1,
            max_shards: 64,
            trend_policy: false,
            trend_window_ms: 10_000,
        }
    }
}

impl LifecycleConfig {
    pub(crate) fn validate(&self) {
        assert!(
            self.split_occupancy > 0.0 && self.split_occupancy <= 1.0,
            "split occupancy must be a fraction in (0, 1]"
        );
        assert!(
            self.merge_occupancy >= 0.0 && self.merge_occupancy < self.split_occupancy,
            "merge occupancy must be below split occupancy"
        );
        assert!(
            self.hysteresis_ticks >= 1,
            "hysteresis needs at least one tick"
        );
        assert!(
            self.checkpoint_every >= 1,
            "checkpoint cadence must be positive"
        );
        assert!(
            self.wal_capacity as u64 >= 2 * self.checkpoint_every,
            "the WAL must hold at least two checkpoint intervals"
        );
        assert!(self.min_shards >= 1, "cannot merge below one shard");
        assert!(
            self.max_shards >= self.min_shards,
            "max shards must be at least min shards"
        );
        assert!(
            !self.trend_policy || self.trend_window_ms >= 1,
            "trend policy needs a non-empty lookback window"
        );
    }
}

/// Why a lifecycle operation was refused. All refusals are clean: the
/// engine keeps serving exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleError {
    /// The engine has shut down.
    Closed,
    /// [`LifecycleConfig::enabled`] is off.
    LifecycleDisabled,
    /// The shard index is out of range.
    UnknownShard,
    /// The operation needs a live shard but this one is killed.
    ShardDead,
    /// The operation needs a dead shard (recovery) but this one is live.
    ShardAlive,
    /// No stored checkpoint to recover from (or it failed to decode).
    NoCheckpoint,
    /// The WAL dropped entries between the checkpoint's high-water mark
    /// and its oldest surviving entry — the suffix is unreplayable and
    /// the shard cannot be recovered bit-identically.
    WalGap,
    /// The proposed split would leave a child with no landmark stations
    /// (all observed demand sits on one side of every candidate cut).
    DegenerateSplit,
    /// Structural operations (split/merge) are only implemented on the
    /// [`SyncShared`](crate::DecisionPath::SyncShared) decision path.
    UnsupportedPath,
    /// A merge would drop below [`LifecycleConfig::min_shards`].
    MinShards,
    /// A split would exceed [`LifecycleConfig::max_shards`].
    MaxShards,
    /// The shard's system is not bootstrapped (cannot happen through
    /// [`Engine::start`]; kept for completeness).
    NotBootstrapped,
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::Closed => write!(f, "the serving engine has shut down"),
            LifecycleError::LifecycleDisabled => {
                write!(f, "the shard lifecycle subsystem is disabled")
            }
            LifecycleError::UnknownShard => write!(f, "shard index out of range"),
            LifecycleError::ShardDead => write!(f, "shard is killed and awaiting recovery"),
            LifecycleError::ShardAlive => write!(f, "shard is alive (recovery needs a kill)"),
            LifecycleError::NoCheckpoint => write!(f, "no usable checkpoint stored"),
            LifecycleError::WalGap => {
                write!(f, "WAL dropped entries past the checkpoint high-water mark")
            }
            LifecycleError::DegenerateSplit => {
                write!(f, "split would leave a child without landmarks")
            }
            LifecycleError::UnsupportedPath => {
                write!(f, "split/merge require the SyncShared decision path")
            }
            LifecycleError::MinShards => write!(f, "merge refused: at the minimum shard count"),
            LifecycleError::MaxShards => write!(f, "split refused: at the maximum shard count"),
            LifecycleError::NotBootstrapped => write!(f, "shard system is not bootstrapped"),
        }
    }
}

impl Error for LifecycleError {}

/// One action [`Engine::lifecycle_tick`] took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleAction {
    /// Re-checkpointed `shard` (its WAL had outrun the cadence).
    Checkpointed {
        /// The checkpointed shard.
        shard: usize,
    },
    /// Split a persistently hot shard in two.
    Split {
        /// The shard that was split (keeps the low-side half).
        parent: usize,
        /// The freshly appended shard serving the high-side half.
        new_shard: usize,
    },
    /// Merged two persistently cold shards.
    Merged {
        /// Lower-indexed parent.
        a: usize,
        /// Higher-indexed parent (its index is vacated; higher shards
        /// shift down by one).
        b: usize,
        /// Index of the surviving merged shard.
        into: usize,
    },
}

/// Lifetime totals of lifecycle operations, exported on `/metrics` as
/// `esharing_lifecycle_ops_total{op=...}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecycleOps {
    /// Completed shard splits.
    pub splits: u64,
    /// Completed shard merges.
    pub merges: u64,
    /// Completed checkpoint-and-replay recoveries.
    pub recovers: u64,
    /// Checkpoints taken (explicit and cadence-driven).
    pub checkpoints: u64,
}

/// Atomic backing store for [`LifecycleOps`].
#[derive(Default)]
pub(crate) struct OpCounters {
    splits: AtomicU64,
    merges: AtomicU64,
    recovers: AtomicU64,
    checkpoints: AtomicU64,
}

impl OpCounters {
    pub(crate) fn totals(&self) -> LifecycleOps {
        LifecycleOps {
            splits: self.splits.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            recovers: self.recovers.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
        }
    }
}

/// Hysteresis state of the split/merge policy, living under the lifecycle
/// gate. Streak vectors are indexed by current shard slot and reset
/// whenever the shard set changes shape.
#[derive(Default)]
pub(crate) struct PolicyState {
    hot: Vec<u32>,
    cold: Vec<u32>,
    prev_shed: Vec<u64>,
}

/// Splits `pts` into (`coord < cut`, `coord >= cut`) along `axis`,
/// preserving order within each side — the same membership rule
/// [`ShardMap`](crate::shard_map::ShardMap) routes by after the split.
fn partition(pts: &[Point], axis: Axis, cut: f64) -> (Vec<Point>, Vec<Point>) {
    let mut lo = Vec::new();
    let mut hi = Vec::new();
    for &p in pts {
        if axis.coord(p) < cut {
            lo.push(p);
        } else {
            hi.push(p);
        }
    }
    (lo, hi)
}

pub(crate) fn centroid(pts: &[Point]) -> Point {
    let n = pts.len().max(1) as f64;
    let (sx, sy) = pts.iter().fold((0.0, 0.0), |(x, y), p| (x + p.x, y + p.y));
    Point::new(sx / n, sy / n)
}

/// Seed derivation for a shard created at runtime (split's high-side
/// child): decorrelates from the parent without colliding with the
/// start-time `seed ^ index` family.
fn derive_seed(parent: u64, new_index: usize) -> u64 {
    parent.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15 ^ new_index as u64
}

impl EngineShared {
    /// Takes the lifecycle gate, refusing when disabled or closed. The
    /// returned guard serializes all lifecycle operations against each
    /// other and against shutdown.
    fn lifecycle_gate(&self) -> Result<MutexGuard<'_, PolicyState>, LifecycleError> {
        if !self.cfg.lifecycle.enabled {
            return Err(LifecycleError::LifecycleDisabled);
        }
        let gate = self.gate.lock().expect("lifecycle gate not poisoned");
        if self.closed.load(Ordering::Acquire) {
            return Err(LifecycleError::Closed);
        }
        Ok(gate)
    }

    /// Records a lifecycle transition in the router-side journal (the
    /// same journal shed events ride; both drain into the fleet event
    /// log on the next snapshot).
    pub(crate) fn journal_lifecycle(&self, kind: EventKind) {
        if self.telemetry_enabled {
            self.shed_journal
                .lock()
                .expect("shed journal not poisoned")
                .record(kind);
        }
    }

    /// A dead replacement slot carrying everything durable the old slot
    /// owned: fallback landmarks, shed counters, the WAL, and the stored
    /// checkpoint.
    fn dead_slot_from(&self, slot: &ShardSlot) -> Arc<ShardSlot> {
        Arc::new(ShardSlot {
            lane: ShardLane::Dead,
            landmarks: slot.landmarks.clone(),
            shed: AtomicU64::new(slot.shed.load(Ordering::Relaxed)),
            last_shed_depth: AtomicU64::new(slot.last_shed_depth.load(Ordering::Relaxed)),
            view: DecisionViewCell::new(),
            wal: slot.wal.clone(),
            checkpoint: Mutex::new(
                slot.checkpoint
                    .lock()
                    .expect("checkpoint not poisoned")
                    .clone(),
            ),
            wal_high_water: AtomicU64::new(slot.wal_high_water.load(Ordering::Relaxed)),
            reopt_epoch: AtomicU64::new(slot.reopt_epoch.load(Ordering::Relaxed)),
            landmark_swaps: AtomicU64::new(slot.landmark_swaps.load(Ordering::Relaxed)),
            bootstrap_mass: slot.bootstrap_mass,
            worker: Mutex::new(None),
        })
    }

    /// Checkpoint with the gate held; see [`Engine::checkpoint_shard`].
    fn checkpoint_shard_locked(&self, shard: usize) -> Result<u64, LifecycleError> {
        let table = self.table();
        let slot = table
            .shards
            .get(shard)
            .ok_or(LifecycleError::UnknownShard)?;
        let (bytes, high_water) = match &slot.lane {
            ShardLane::Fast { seat, .. } => {
                // Holding the seat stalls admits, so the WAL head read
                // here is exactly the state the image captures.
                let seat = seat.lock().expect("seat not poisoned");
                let system = seat.system.as_ref().ok_or(LifecycleError::Closed)?;
                let wal = slot
                    .wal
                    .as_ref()
                    .expect("lifecycle-enabled shards carry a WAL");
                let high = wal.lock().expect("wal not poisoned").total_recorded();
                let bytes = encode_checkpoint(
                    system,
                    &seat.latency,
                    high,
                    slot.reopt_epoch.load(Ordering::Relaxed),
                    slot.landmark_swaps.load(Ordering::Relaxed),
                )
                .ok_or(LifecycleError::NotBootstrapped)?;
                (bytes, high)
            }
            ShardLane::Mailbox { tx, .. } => {
                // The worker serializes the image between retires, seeing
                // the same consistency the seat lock provides above.
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(Command::Checkpoint { reply: reply_tx })
                    .map_err(|_| LifecycleError::Closed)?;
                reply_rx.recv().map_err(|_| LifecycleError::Closed)?
            }
            ShardLane::Dead => return Err(LifecycleError::ShardDead),
        };
        *slot.checkpoint.lock().expect("checkpoint not poisoned") = Some(bytes);
        slot.wal_high_water.store(high_water, Ordering::Release);
        self.ops.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(high_water)
    }

    /// Kill with the gate held; see [`Engine::kill_shard`].
    fn kill_shard_locked(&self, shard: usize) -> Result<(), LifecycleError> {
        let table = self.table();
        let slot = table
            .shards
            .get(shard)
            .ok_or(LifecycleError::UnknownShard)?;
        match &slot.lane {
            ShardLane::Fast { seat, .. } => {
                let mut seat_guard = seat.lock().expect("seat not poisoned");
                if seat_guard.system.is_none() {
                    return Err(LifecycleError::Closed);
                }
                // The kill itself: discard the live state. Recovery must
                // rebuild it from checkpoint + WAL alone.
                seat_guard.moved = true;
                let _ = seat_guard.system.take();
                let mut shards = table.shards.clone();
                shards[shard] = self.dead_slot_from(slot);
                self.swap_table(Arc::new(RouterTable {
                    map: table.map.clone(),
                    shards,
                }));
                drop(seat_guard);
                if let Some(WorkerHandle::Fast { handle, stop }) =
                    slot.worker.lock().expect("worker slot not poisoned").take()
                {
                    // The drain worker empties its ring before exiting, so
                    // straggler claims from submits that raced the swap
                    // drain harmlessly.
                    stop.store(true, Ordering::Release);
                    let _ = handle.join();
                }
                Ok(())
            }
            ShardLane::Mailbox { tx, .. } => {
                let worker = slot.worker.lock().expect("worker slot not poisoned").take();
                let Some(WorkerHandle::Mailbox(handle)) = worker else {
                    return Err(LifecycleError::ShardDead);
                };
                // FIFO mailbox: everything enqueued before the Shutdown is
                // served (and WAL-journalled) first; submits racing past it
                // observe the disconnect and retry onto the dead slot.
                let _ = tx.send(Command::Shutdown);
                let _ = handle.join();
                let mut shards = table.shards.clone();
                shards[shard] = self.dead_slot_from(slot);
                self.swap_table(Arc::new(RouterTable {
                    map: table.map.clone(),
                    shards,
                }));
                Ok(())
            }
            ShardLane::Dead => Err(LifecycleError::ShardDead),
        }
    }

    /// Recovery with the gate held; see [`Engine::recover_shard`].
    fn recover_shard_locked(&self, shard: usize) -> Result<u64, LifecycleError> {
        let table = self.table();
        let slot = table
            .shards
            .get(shard)
            .ok_or(LifecycleError::UnknownShard)?;
        if slot.alive() {
            return Err(LifecycleError::ShardAlive);
        }
        let bytes = slot
            .checkpoint
            .lock()
            .expect("checkpoint not poisoned")
            .clone()
            .ok_or(LifecycleError::NoCheckpoint)?;
        let ckpt = ShardCheckpoint::decode(&bytes).map_err(|_| LifecycleError::NoCheckpoint)?;
        let wal = slot.wal.clone().ok_or(LifecycleError::NoCheckpoint)?;
        let mut config = self.cfg.system.clone();
        config.seed = ckpt.system_seed;
        config.deviation.seed = ckpt.deviation_seed;
        let mut system = ESharing::restore(config, ckpt.system);
        let (entries, wal_head) = {
            let mut journal = wal.lock().expect("wal not poisoned");
            (journal.drain(), journal.total_recorded())
        };
        // Gap check: if the oldest surviving WAL entry is already past the
        // checkpoint's high-water mark (or everything past it was dropped),
        // part of the replay suffix is gone and bit-identical recovery is
        // impossible. The shard stays dead.
        let high_water = ckpt.wal_high_water;
        let replay_lost = match entries.first() {
            Some(first) => first.seq > high_water,
            None => wal_head > high_water,
        };
        if replay_lost {
            return Err(LifecycleError::WalGap);
        }
        let mut replayed = 0u64;
        for entry in &entries {
            if entry.seq < high_water {
                continue;
            }
            if let EventKind::RequestAdmitted { x, y } = &entry.kind {
                system
                    .handle_request(Point::new(*x, *y))
                    .expect("restored systems are bootstrapped");
                replayed += 1;
            }
        }
        // Replay is latency-silent (the histogram would otherwise record
        // replay speed, not serving latency): the restored slot keeps the
        // checkpointed histogram, losing only the killed window's samples.
        // Latency telemetry is advisory; decision state is exact.
        let fresh = encode_checkpoint(
            &system,
            &ckpt.latency,
            wal_head,
            ckpt.reopt_epoch,
            ckpt.landmark_swaps,
        );
        let new_slot = spawn_slot(
            &self.cfg,
            self.epoch,
            shard,
            self.health.clone(),
            SlotSpec {
                system,
                latency: ckpt.latency.clone(),
                landmarks: slot.landmarks.clone(),
                shed: slot.shed.load(Ordering::Relaxed),
                last_shed_depth: slot.last_shed_depth.load(Ordering::Relaxed),
                wal: Some(wal),
                checkpoint: fresh,
                wal_high_water: wal_head,
                reopt_epoch: ckpt.reopt_epoch,
                landmark_swaps: ckpt.landmark_swaps,
                bootstrap_mass: slot.bootstrap_mass,
            },
        );
        let mut shards = table.shards.clone();
        shards[shard] = new_slot;
        self.swap_table(Arc::new(RouterTable {
            map: table.map.clone(),
            shards,
        }));
        self.journal_lifecycle(EventKind::ShardRecovered {
            shard: shard as u64,
            replayed,
        });
        if let Some(h) = &self.health {
            h.on_lifecycle("recover", crate::engine::elapsed_ns(self.epoch));
        }
        self.ops.recovers.fetch_add(1, Ordering::Relaxed);
        Ok(replayed)
    }

    /// Split with the gate held; see [`Engine::split_shard`].
    fn split_shard_locked(&self, parent: usize) -> Result<usize, LifecycleError> {
        if self.cfg.decision_path != DecisionPath::SyncShared {
            return Err(LifecycleError::UnsupportedPath);
        }
        let table = self.table();
        if table.shards.len() >= self.cfg.lifecycle.max_shards {
            return Err(LifecycleError::MaxShards);
        }
        let slot = table
            .shards
            .get(parent)
            .ok_or(LifecycleError::UnknownShard)?;
        let ShardLane::Fast { seat, .. } = &slot.lane else {
            return Err(LifecycleError::ShardDead);
        };
        let mut seat_guard = seat.lock().expect("seat not poisoned");
        let state = &mut **seat_guard;
        let system = state.system.as_ref().ok_or(LifecycleError::Closed)?;
        let ckpt = system.checkpoint().ok_or(LifecycleError::NotBootstrapped)?;
        let parent_cfg = system.config().clone();
        let dev = &ckpt.deviation;

        // Cut geometry: bisect the recent observed demand (KS window; the
        // station set before any live traffic) at the median of its wider
        // axis — each child inherits roughly half the load.
        let basis: &[Point] = if dev.window.is_empty() {
            &dev.stations
        } else {
            &dev.window
        };
        let (mut xmin, mut xmax, mut ymin, mut ymax) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for p in basis {
            xmin = xmin.min(p.x);
            xmax = xmax.max(p.x);
            ymin = ymin.min(p.y);
            ymax = ymax.max(p.y);
        }
        let axis = if xmax - xmin >= ymax - ymin {
            Axis::X
        } else {
            Axis::Y
        };
        let mut coords: Vec<f64> = basis.iter().map(|&p| axis.coord(p)).collect();
        coords.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        let cut = coords[coords.len() / 2];

        // State partition rule: every point collection splits by the same
        // membership test the router will apply (`coord < cut` → low
        // child). Offline landmarks (the first `k` stations) and online
        // opens partition independently so each child's `k` stays the
        // count of *its* landmarks.
        let k = usize::try_from(dev.k).expect("checkpoint k fits usize");
        let (lo_marks, hi_marks) = partition(&dev.stations[..k.min(dev.stations.len())], axis, cut);
        if lo_marks.is_empty() || hi_marks.is_empty() {
            return Err(LifecycleError::DegenerateSplit);
        }
        let (lo_open, hi_open) = partition(&dev.stations[k.min(dev.stations.len())..], axis, cut);
        let (lo_win, hi_win) = partition(&dev.window, axis, cut);
        let (lo_hist, hi_hist) = partition(&dev.history, axis, cut);
        // An empty reference distribution would leave the child's KS
        // monitor comparing against nothing; fall back to the parent's
        // full history (drift then reads as similarity to the whole zone).
        let lo_hist = if lo_hist.is_empty() {
            dev.history.clone()
        } else {
            lo_hist
        };
        let hi_hist = if hi_hist.is_empty() {
            dev.history.clone()
        } else {
            hi_hist
        };

        let new_index = table.shards.len();
        // Low child is the *senior*: it keeps the parent's slot, RNG
        // position, cumulative costs/metrics, and latency history, so
        // fleet totals are conserved across the split. The high child is
        // a newborn with a derived seed and zeroed cumulative state.
        let senior_dev = DeviationCheckpoint {
            k: lo_marks.len() as u64,
            penalty_kind: dev.penalty_kind,
            penalty_tolerance: dev.penalty_tolerance,
            f_dec: dev.f_dec,
            f_dec_initial: dev.f_dec_initial,
            stations: lo_marks.iter().chain(&lo_open).copied().collect(),
            walking_cost: dev.walking_cost,
            space_cost: dev.space_cost,
            opened_online: lo_open.len() as u64,
            rng_seed: dev.rng_seed,
            rng_draws: dev.rng_draws,
            a: dev.a,
            history: lo_hist,
            window: lo_win,
            last_similarity: dev.last_similarity,
            shift_streak: dev.shift_streak,
            epoch: dev.epoch,
            events_dropped: dev.events_dropped,
            // A pending re-test snapshotted the *parent's* window; after
            // the bisection it describes neither child. Both children
            // re-arm at their next doubling boundary.
            pending: None,
        };
        let junior_dev = DeviationCheckpoint {
            k: hi_marks.len() as u64,
            penalty_kind: dev.penalty_kind,
            penalty_tolerance: dev.penalty_tolerance,
            f_dec: dev.f_dec,
            f_dec_initial: dev.f_dec_initial,
            stations: hi_marks.iter().chain(&hi_open).copied().collect(),
            walking_cost: 0.0,
            space_cost: 0.0,
            opened_online: hi_open.len() as u64,
            rng_seed: derive_seed(parent_cfg.deviation.seed, new_index),
            rng_draws: 0,
            a: 0,
            history: hi_hist,
            window: hi_win,
            last_similarity: dev.last_similarity,
            shift_streak: dev.shift_streak,
            epoch: dev.epoch,
            events_dropped: 0,
            pending: None,
        };
        let senior_sys = ESharing::restore(
            parent_cfg.clone(),
            SystemCheckpoint {
                landmarks: lo_marks.clone(),
                metrics: ckpt.metrics,
                deviation: senior_dev,
            },
        );
        let mut junior_cfg = parent_cfg.clone();
        junior_cfg.seed = derive_seed(parent_cfg.seed, new_index);
        junior_cfg.deviation.seed = derive_seed(parent_cfg.deviation.seed, new_index);
        let junior_sys = ESharing::restore(
            junior_cfg,
            SystemCheckpoint {
                landmarks: hi_marks.clone(),
                metrics: SystemMetrics::default(),
                deviation: junior_dev,
            },
        );
        let lo_anchor = centroid(&lo_marks);
        let hi_anchor = centroid(&hi_marks);

        // Commit: retire the parent seat, bisect its zone in a fresh map,
        // and swap the table while still holding the seat so blocked
        // submitters wake into the post-split world.
        state.moved = true;
        let _ = state.system.take();
        let mut map = table.map.clone().into_dynamic();
        let mapped = map.split_zone(parent, axis, cut, lo_anchor, hi_anchor);
        debug_assert_eq!(mapped, new_index, "map and slot numbering stay aligned");
        let wal_cap = self.cfg.lifecycle.wal_capacity;
        let senior_wal = Arc::new(Mutex::new(EventJournal::new(wal_cap, self.epoch)));
        let junior_wal = Arc::new(Mutex::new(EventJournal::new(wal_cap, self.epoch)));
        // Both children serve landmarks derived from the parent's epoch;
        // the senior also keeps the parent's lifetime swap count (junior
        // is a newborn with zeroed cumulative state, same as its metrics).
        let parent_epoch = slot.reopt_epoch.load(Ordering::Relaxed);
        let parent_swaps = slot.landmark_swaps.load(Ordering::Relaxed);
        let senior_ckpt =
            encode_checkpoint(&senior_sys, &state.latency, 0, parent_epoch, parent_swaps);
        let junior_ckpt = encode_checkpoint(
            &junior_sys,
            &esharing_core::LatencyHistogram::new(),
            0,
            parent_epoch,
            0,
        );
        // The parent's planning mass splits with its landmarks: each
        // child's re-optimizer should plan at the demand scale its share
        // of the zone actually carried.
        let parent_mass = slot.bootstrap_mass;
        let mark_total = (lo_marks.len() + hi_marks.len()).max(1) as u64;
        let senior_mass = parent_mass * lo_marks.len() as u64 / mark_total;
        let junior_mass = parent_mass.saturating_sub(senior_mass);
        let senior_slot = spawn_slot(
            &self.cfg,
            self.epoch,
            parent,
            self.health.clone(),
            SlotSpec {
                system: senior_sys,
                latency: state.latency.clone(),
                landmarks: lo_marks,
                shed: slot.shed.load(Ordering::Relaxed),
                last_shed_depth: slot.last_shed_depth.load(Ordering::Relaxed),
                wal: Some(senior_wal),
                checkpoint: senior_ckpt,
                wal_high_water: 0,
                reopt_epoch: parent_epoch,
                landmark_swaps: parent_swaps,
                bootstrap_mass: senior_mass,
            },
        );
        let junior_slot = spawn_slot(
            &self.cfg,
            self.epoch,
            new_index,
            self.health.clone(),
            SlotSpec {
                system: junior_sys,
                latency: esharing_core::LatencyHistogram::new(),
                landmarks: hi_marks,
                shed: 0,
                last_shed_depth: 0,
                wal: Some(junior_wal),
                checkpoint: junior_ckpt,
                wal_high_water: 0,
                reopt_epoch: parent_epoch,
                landmark_swaps: 0,
                bootstrap_mass: junior_mass,
            },
        );
        let mut shards = table.shards.clone();
        shards[parent] = senior_slot;
        shards.push(junior_slot);
        self.swap_table(Arc::new(RouterTable { map, shards }));
        drop(seat_guard);
        if let Some(WorkerHandle::Fast { handle, stop }) =
            slot.worker.lock().expect("worker slot not poisoned").take()
        {
            stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
        self.journal_lifecycle(EventKind::ShardSplit {
            parent: parent as u64,
            lo: parent as u64,
            hi: new_index as u64,
        });
        if let Some(h) = &self.health {
            h.on_lifecycle("split", crate::engine::elapsed_ns(self.epoch));
        }
        self.ops.splits.fetch_add(1, Ordering::Relaxed);
        Ok(new_index)
    }

    /// Merge with the gate held; see [`Engine::merge_shards`].
    fn merge_shards_locked(&self, a: usize, b: usize) -> Result<usize, LifecycleError> {
        if self.cfg.decision_path != DecisionPath::SyncShared {
            return Err(LifecycleError::UnsupportedPath);
        }
        if a == b {
            return Err(LifecycleError::UnknownShard);
        }
        let (a, b) = (a.min(b), a.max(b));
        let table = self.table();
        if table.shards.len() <= self.cfg.lifecycle.min_shards {
            return Err(LifecycleError::MinShards);
        }
        if b >= table.shards.len() {
            return Err(LifecycleError::UnknownShard);
        }
        let (slot_a, slot_b) = (&table.shards[a], &table.shards[b]);
        let (ShardLane::Fast { seat: seat_a, .. }, ShardLane::Fast { seat: seat_b, .. }) =
            (&slot_a.lane, &slot_b.lane)
        else {
            return Err(LifecycleError::ShardDead);
        };
        // Seats lock in index order (a < b): the only place two seats are
        // ever held at once, and always in this order.
        let mut guard_a = seat_a.lock().expect("seat not poisoned");
        let mut guard_b = seat_b.lock().expect("seat not poisoned");
        let sys_a = guard_a.system.as_ref().ok_or(LifecycleError::Closed)?;
        let sys_b = guard_b.system.as_ref().ok_or(LifecycleError::Closed)?;
        let ckpt_a = sys_a.checkpoint().ok_or(LifecycleError::NotBootstrapped)?;
        let ckpt_b = sys_b.checkpoint().ok_or(LifecycleError::NotBootstrapped)?;
        let merged_cfg = sys_a.config().clone();
        let (da, db) = (&ckpt_a.deviation, &ckpt_b.deviation);
        let ka = usize::try_from(da.k)
            .expect("checkpoint k fits usize")
            .min(da.stations.len());
        let kb = usize::try_from(db.k)
            .expect("checkpoint k fits usize")
            .min(db.stations.len());
        // Deterministic union: a's landmarks, then b's, then a's online
        // opens, then b's — so merge results are reproducible and the
        // station log stays a valid insertion order. Scalars (RNG
        // position, penalty state, monitor epoch) continue from the
        // lower-indexed survivor; additive state sums.
        let landmarks: Vec<Point> = da.stations[..ka]
            .iter()
            .chain(&db.stations[..kb])
            .copied()
            .collect();
        let merged_dev = DeviationCheckpoint {
            k: (ka + kb) as u64,
            penalty_kind: da.penalty_kind,
            penalty_tolerance: da.penalty_tolerance,
            f_dec: da.f_dec,
            f_dec_initial: da.f_dec_initial,
            stations: landmarks
                .iter()
                .copied()
                .chain(da.stations[ka..].iter().copied())
                .chain(db.stations[kb..].iter().copied())
                .collect(),
            walking_cost: da.walking_cost + db.walking_cost,
            space_cost: da.space_cost + db.space_cost,
            opened_online: da.opened_online + db.opened_online,
            rng_seed: da.rng_seed,
            rng_draws: da.rng_draws,
            a: da.a,
            history: da.history.iter().chain(&db.history).copied().collect(),
            // Restore keeps the most recent `ks_window` of this; b's half
            // is appended after a's as the "newer" side.
            window: da.window.iter().chain(&db.window).copied().collect(),
            last_similarity: da.last_similarity,
            shift_streak: da.shift_streak,
            epoch: da.epoch,
            events_dropped: da.events_dropped + db.events_dropped,
            // Pending re-tests snapshotted pre-merge windows; the merged
            // shard re-arms at its next doubling boundary.
            pending: None,
        };
        let merged_sys = ESharing::restore(
            merged_cfg,
            SystemCheckpoint {
                landmarks: landmarks.clone(),
                metrics: ckpt_a.metrics + ckpt_b.metrics,
                deviation: merged_dev,
            },
        );
        let merged_latency = guard_a.latency.clone() + guard_b.latency.clone();
        let anchor = centroid(&landmarks);

        // Commit: retire both seats, retarget b's leaves onto a and
        // renumber in a fresh map, swap while holding both seats.
        guard_a.moved = true;
        guard_b.moved = true;
        let _ = guard_a.system.take();
        let _ = guard_b.system.take();
        let mut map = table.map.clone().into_dynamic();
        map.merge_zones(a, b, anchor);
        let wal = Arc::new(Mutex::new(EventJournal::new(
            self.cfg.lifecycle.wal_capacity,
            self.epoch,
        )));
        // Provenance union mirrors the state union: the merged zone's
        // landmark set is as new as its newest half, swap totals add.
        let merged_epoch = slot_a
            .reopt_epoch
            .load(Ordering::Relaxed)
            .max(slot_b.reopt_epoch.load(Ordering::Relaxed));
        let merged_swaps = slot_a.landmark_swaps.load(Ordering::Relaxed)
            + slot_b.landmark_swaps.load(Ordering::Relaxed);
        let fresh = encode_checkpoint(&merged_sys, &merged_latency, 0, merged_epoch, merged_swaps);
        let merged_slot = spawn_slot(
            &self.cfg,
            self.epoch,
            a,
            self.health.clone(),
            SlotSpec {
                system: merged_sys,
                latency: merged_latency,
                landmarks,
                shed: slot_a.shed.load(Ordering::Relaxed) + slot_b.shed.load(Ordering::Relaxed),
                last_shed_depth: slot_a
                    .last_shed_depth
                    .load(Ordering::Relaxed)
                    .max(slot_b.last_shed_depth.load(Ordering::Relaxed)),
                wal: Some(wal),
                checkpoint: fresh,
                wal_high_water: 0,
                reopt_epoch: merged_epoch,
                landmark_swaps: merged_swaps,
                bootstrap_mass: slot_a.bootstrap_mass + slot_b.bootstrap_mass,
            },
        );
        let mut shards = table.shards.clone();
        shards[a] = merged_slot;
        shards.remove(b);
        self.swap_table(Arc::new(RouterTable { map, shards }));
        drop(guard_b);
        drop(guard_a);
        for slot in [slot_a, slot_b] {
            if let Some(WorkerHandle::Fast { handle, stop }) =
                slot.worker.lock().expect("worker slot not poisoned").take()
            {
                stop.store(true, Ordering::Release);
                let _ = handle.join();
            }
        }
        self.journal_lifecycle(EventKind::ShardMerged {
            a: a as u64,
            b: b as u64,
            into: a as u64,
        });
        if let Some(h) = &self.health {
            h.on_lifecycle("merge", crate::engine::elapsed_ns(self.epoch));
        }
        self.ops.merges.fetch_add(1, Ordering::Relaxed);
        Ok(a)
    }

    /// One policy pass with the gate held; see [`Engine::lifecycle_tick`].
    fn lifecycle_tick_locked(&self, policy: &mut PolicyState) -> Vec<LifecycleAction> {
        let lc = &self.cfg.lifecycle;
        let mut actions = Vec::new();
        let table = self.table();
        let n = table.shards.len();
        if policy.hot.len() != n {
            // Shard set changed shape (split/merge/first tick): restart
            // every streak and rebase shed deltas.
            policy.hot = vec![0; n];
            policy.cold = vec![0; n];
            policy.prev_shed = table
                .shards
                .iter()
                .map(|s| s.shed.load(Ordering::Relaxed))
                .collect();
        }
        // Cadence-driven checkpoints.
        for (i, slot) in table.shards.iter().enumerate() {
            if !slot.alive() {
                continue;
            }
            let Some(wal) = &slot.wal else { continue };
            let head = wal.lock().expect("wal not poisoned").total_recorded();
            let lag = head.saturating_sub(slot.wal_high_water.load(Ordering::Acquire));
            if lag >= lc.checkpoint_every && self.checkpoint_shard_locked(i).is_ok() {
                actions.push(LifecycleAction::Checkpointed { shard: i });
            }
        }
        // Pressure classification with hysteresis. With the trend policy
        // on, the signals come from the health plane's time-series store:
        // occupancy is the window mean projected forward by its slope, and
        // sheds are the counter delta over the whole window. Shards the
        // store has no data for yet (plane warming up, or freshly spawned
        // by a split) fall back to the instantaneous reads.
        let cap = self.cfg.queue_capacity as f64;
        let trend_window_ns = lc.trend_window_ms.saturating_mul(1_000_000);
        let trend_plane = self.health.as_ref().filter(|_| lc.trend_policy);
        let now_ns = crate::engine::elapsed_ns(self.epoch);
        let mut hottest: Option<(usize, f64)> = None;
        let mut cold_ready: Vec<(usize, f64)> = Vec::new();
        for (i, slot) in table.shards.iter().enumerate() {
            if !slot.alive() {
                policy.hot[i] = 0;
                policy.cold[i] = 0;
                continue;
            }
            let shed_now = slot.shed.load(Ordering::Relaxed);
            let shed_delta = shed_now.saturating_sub(policy.prev_shed[i]);
            policy.prev_shed[i] = shed_now;
            let trend = trend_plane.and_then(|h| h.shard_trend(i, trend_window_ns, now_ns));
            let (occupancy, hot, cold) = match trend {
                Some((projected, window_sheds)) => {
                    let occupancy = (projected / cap).max(0.0);
                    // The shed term needs corroboration from this tick's
                    // delta: window_sheds alone stays positive for a full
                    // window after a split already relieved the shard,
                    // which would re-split on stale pressure.
                    (
                        occupancy,
                        occupancy >= lc.split_occupancy || (window_sheds > 0.0 && shed_delta > 0),
                        occupancy <= lc.merge_occupancy && window_sheds == 0.0,
                    )
                }
                None => {
                    let occupancy = slot.pending() as f64 / cap;
                    (
                        occupancy,
                        occupancy >= lc.split_occupancy || shed_delta > 0,
                        occupancy <= lc.merge_occupancy && shed_delta == 0,
                    )
                }
            };
            policy.hot[i] = if hot { policy.hot[i] + 1 } else { 0 };
            policy.cold[i] = if cold { policy.cold[i] + 1 } else { 0 };
            if policy.hot[i] >= lc.hysteresis_ticks
                && hottest.is_none_or(|(_, best)| occupancy > best)
            {
                hottest = Some((i, occupancy));
            }
            if policy.cold[i] >= lc.hysteresis_ticks {
                cold_ready.push((i, occupancy));
            }
        }
        // At most one structural change per tick, split taking priority —
        // relieving overload matters more than consolidating idle shards.
        if self.cfg.decision_path == DecisionPath::SyncShared {
            if let Some((hot_shard, _)) = hottest {
                if n < lc.max_shards {
                    match self.split_shard_locked(hot_shard) {
                        Ok(new_shard) => {
                            actions.push(LifecycleAction::Split {
                                parent: hot_shard,
                                new_shard,
                            });
                            policy.hot.clear();
                        }
                        // E.g. DegenerateSplit on point-mass demand: stand
                        // down this shard's streak rather than retrying
                        // every tick.
                        Err(_) => policy.hot[hot_shard] = 0,
                    }
                }
            } else if cold_ready.len() >= 2 && n > lc.min_shards {
                cold_ready.sort_by(|x, y| x.1.partial_cmp(&y.1).expect("finite occupancy"));
                let (a, b) = (cold_ready[0].0, cold_ready[1].0);
                match self.merge_shards_locked(a, b) {
                    Ok(into) => {
                        actions.push(LifecycleAction::Merged {
                            a: a.min(b),
                            b: a.max(b),
                            into,
                        });
                        policy.hot.clear();
                    }
                    Err(_) => policy.cold[a] = 0,
                }
            }
        }
        actions
    }
}

impl Engine {
    /// Checkpoints `shard` now: encodes its full decision state (stations,
    /// penalty bookkeeping, KS window, RNG position, latency histogram)
    /// together with the WAL high-water sequence, and stores the image as
    /// the shard's recovery source. Returns the high-water mark.
    ///
    /// # Errors
    ///
    /// [`LifecycleError`] when disabled, closed, out of range, or the
    /// shard is dead.
    pub fn checkpoint_shard(&self, shard: usize) -> Result<u64, LifecycleError> {
        let _gate = self.shared.lifecycle_gate()?;
        self.shared.checkpoint_shard_locked(shard)
    }

    /// Kills `shard`, discarding its live state — the failover injection
    /// point. The zone keeps serving degraded (offline-landmark fallbacks
    /// that shed into the metrics) until [`Engine::recover_shard`]
    /// rebuilds it; no request ever panics or hangs on a dead shard.
    ///
    /// # Errors
    ///
    /// [`LifecycleError`] when disabled, closed, out of range, or already
    /// dead.
    pub fn kill_shard(&self, shard: usize) -> Result<(), LifecycleError> {
        let _gate = self.shared.lifecycle_gate()?;
        self.shared.kill_shard_locked(shard)
    }

    /// Recovers a killed shard: decodes its last stored checkpoint,
    /// restores the system (RNG reseeded and fast-forwarded to its
    /// checkpointed position), replays the WAL suffix past the image's
    /// high-water sequence, and swaps a freshly spawned slot into the
    /// router. The recovered shard's decision state is **bit-identical**
    /// to one that was never killed. Returns the number of replayed
    /// requests.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::ShardAlive`] if the shard was not killed,
    /// [`LifecycleError::NoCheckpoint`] without a usable image,
    /// [`LifecycleError::WalGap`] if the bounded WAL dropped part of the
    /// replay suffix.
    pub fn recover_shard(&self, shard: usize) -> Result<u64, LifecycleError> {
        let _gate = self.shared.lifecycle_gate()?;
        self.shared.recover_shard_locked(shard)
    }

    /// Splits a hot shard in two, live: the zone is bisected at the median
    /// of its recent demand along its wider axis, stations / KS window /
    /// history partition by point membership, the low half stays in place
    /// (keeping the parent's RNG position and cumulative totals) and the
    /// high half becomes a new shard appended at the end of the table.
    /// In-flight requests reroute transparently; none are dropped.
    /// Returns the new shard's index.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::UnsupportedPath`] on the mailbox path,
    /// [`LifecycleError::DegenerateSplit`] when demand cannot be bisected,
    /// [`LifecycleError::MaxShards`] at the configured ceiling.
    pub fn split_shard(&self, shard: usize) -> Result<usize, LifecycleError> {
        let _gate = self.shared.lifecycle_gate()?;
        self.shared.split_shard_locked(shard)
    }

    /// Merges two cold shards into the lower-indexed slot, live: zones
    /// retarget in the map, stations and cumulative state union
    /// deterministically, the higher slot vacates (higher shard indices
    /// shift down by one). Returns the surviving index.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::UnsupportedPath`] on the mailbox path,
    /// [`LifecycleError::MinShards`] at the configured floor.
    pub fn merge_shards(&self, a: usize, b: usize) -> Result<usize, LifecycleError> {
        let _gate = self.shared.lifecycle_gate()?;
        self.shared.merge_shards_locked(a, b)
    }

    /// Runs one pass of the lifecycle policy: cadence-driven checkpoints
    /// for every shard whose WAL outran
    /// [`LifecycleConfig::checkpoint_every`], then at most one structural
    /// action — splitting a shard that stayed hot (ring occupancy ≥
    /// [`LifecycleConfig::split_occupancy`] or fresh sheds) for
    /// [`LifecycleConfig::hysteresis_ticks`] consecutive ticks, or merging
    /// the two coldest persistently idle shards. With
    /// [`LifecycleConfig::trend_policy`] and the health plane enabled, the
    /// pressure signals are slope-projected window means and windowed shed
    /// deltas from the time-series store instead of instantaneous reads.
    /// Call it at any cadence; there is no background thread.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::LifecycleDisabled`] / [`LifecycleError::Closed`];
    /// per-shard action failures are absorbed into the policy (the action
    /// simply does not appear in the returned list).
    pub fn lifecycle_tick(&self) -> Result<Vec<LifecycleAction>, LifecycleError> {
        let mut gate = self.shared.lifecycle_gate()?;
        Ok(self.shared.lifecycle_tick_locked(&mut gate))
    }

    /// Lifetime lifecycle-operation totals (also exported on `/metrics`).
    pub fn lifecycle_ops(&self) -> LifecycleOps {
        self.shared.ops.totals()
    }

    /// Shards currently serving (total slots minus killed ones).
    pub fn shards_active(&self) -> usize {
        self.shared
            .table()
            .shards
            .iter()
            .filter(|s| s.alive())
            .count()
    }
}
