//! Sharded serving demo: one day of city demand through 1, 2 and 8 zones.
//!
//! Bootstraps the engine on day-0 drop-offs, then replays day 1 through
//! engines of increasing shard counts with the same emulated downstream
//! latency per request. With one worker every request serializes behind
//! that latency; zone shards overlap it, so requests/sec climbs with the
//! shard count while the fleet-level placement economics stay comparable.
//!
//! Run with: `cargo run --release --example sharded_city`

use e_sharing::dataset::{destinations, CityConfig, SyntheticCity, TripGenerator};
use e_sharing::engine::replay::{replay_trips, ReplayConfig};
use e_sharing::engine::{Engine, EngineConfig, Partition};
use std::time::Duration;

fn main() {
    let city = SyntheticCity::generate(&CityConfig::default());
    let mut gen = TripGenerator::new(&city, 2017);
    let history = destinations(&gen.generate_days(0, 1));
    let day1 = gen.generate_days(1, 1);
    println!(
        "bootstrap: {} historical drop-offs; replaying {} day-1 trips\n",
        history.len(),
        day1.len()
    );

    let delay = Duration::from_micros(250);
    let clients = 16;
    let mut base_rate = None;
    for shards in [1usize, 2, 8] {
        let engine = Engine::start(
            &history,
            EngineConfig {
                shards,
                partition: Partition::LandmarkVoronoi,
                service_delay: delay,
                ..EngineConfig::default()
            },
        );
        let report = replay_trips(
            &engine,
            &day1,
            &ReplayConfig {
                clients,
                rate_per_s: None,
            },
        );
        let snapshot = engine.snapshot().expect("engine is running");
        let rate = report.served_per_s();
        let speedup = rate / *base_rate.get_or_insert(rate);
        println!(
            "{:>2} zone(s): {:>6.0} req/s ({speedup:.2}x)  p99 {:>5.2} ms  degraded {:>3}  \
             stations {:>3}  avg walk {:>3.0} m",
            engine.shard_count(),
            rate,
            report.latency.p99_us as f64 / 1_000.0,
            report.degraded,
            snapshot.fleet.stations.len(),
            snapshot.metrics.avg_walk_m(),
        );
        let _ = engine.shutdown();
    }
    println!(
        "\neach zone runs the paper's online algorithm independently on its own\n\
         demand stream; the {} µs per-request service latency is emulated\n\
         identically at every shard count, so the speedup is pure overlap.",
        delay.as_micros()
    );
}
