//! Log-bucketed latency histogram.
//!
//! Lived in `esharing-core::metrics` through PR 3; moved here so the
//! registry, the exposition layer, and core can all share one
//! implementation (core re-exports it, so `esharing_core::LatencyHistogram`
//! keeps working).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};
use std::time::Duration;

/// Sub-bucket resolution of [`LatencyHistogram`]: each power-of-two octave
/// is split into `2^3 = 8` sub-buckets, bounding the relative quantile
/// error at `1/8 = 12.5%`.
const LAT_SUB_BITS: u32 = 3;
const LAT_SUB: u64 = 1 << LAT_SUB_BITS;
/// Values at or above `2^(LAT_MAX_EXP + 1)` ns (≈ 36 min) clamp into the
/// last bucket — far beyond any decision latency this system can produce.
const LAT_MAX_EXP: u32 = 40;
/// Total bucket count: `LAT_SUB` exact linear buckets for 0..8 ns plus 8
/// sub-buckets for each octave `2^3 ..= 2^40`.
const LAT_BUCKETS: usize =
    LAT_SUB as usize + (LAT_MAX_EXP - LAT_SUB_BITS + 1) as usize * LAT_SUB as usize;

/// A log-bucketed latency histogram for decision-path telemetry.
///
/// Nanosecond durations land in buckets whose width is at most 1/8 of
/// their value (`2^3` sub-buckets per power-of-two octave; values below
/// 8 ns get exact one-nanosecond buckets), so every reported quantile is
/// within 12.5% of the true order statistic while the whole structure is
/// a few hundred counters. Recording is O(1) and allocation-free once the
/// bucket vector has grown past the largest observed value.
///
/// Histograms are running sums: per-shard histograms from a partitioned
/// deployment merge by addition and the quantiles recompute correctly from
/// the merged counts — which is exactly what averaging per-shard
/// percentiles would get wrong.
///
/// Quantiles use the nearest-rank convention and interpolate linearly
/// within the holding bucket by rank fraction, so reported figures do not
/// quantize to the handful of bucket bounds (pre-interpolation, every
/// microsecond-scale p50 collapsed to values like 1407 ns). The true order
/// statistic still lies within the same bucket, i.e. within 12.5%.
///
/// # Examples
///
/// ```
/// use esharing_telemetry::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::new();
/// for us in [100u64, 200, 300, 400, 10_000] {
///     h.record(Duration::from_micros(us));
/// }
/// assert_eq!(h.count(), 5);
/// // The p50 bucket contains the true median (300 µs) within 12.5%.
/// let p50 = h.p50_ns() as f64;
/// assert!((p50 - 300_000.0).abs() / 300_000.0 <= 0.125);
/// // The outlier dominates the max but not the median.
/// assert!(h.max_ns() >= 10_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket counters, grown on demand to the highest observed bucket
    /// (never shrunk), so empty and low-latency histograms serialize
    /// compactly.
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

/// Bucket index for a nanosecond value.
fn lat_bucket_of(ns: u64) -> usize {
    if ns < LAT_SUB {
        return ns as usize;
    }
    let exp = 63 - u64::leading_zeros(ns);
    if exp > LAT_MAX_EXP {
        return LAT_BUCKETS - 1;
    }
    let sub = (ns >> (exp - LAT_SUB_BITS)) & (LAT_SUB - 1);
    LAT_SUB as usize + ((exp - LAT_SUB_BITS) as usize) * LAT_SUB as usize + sub as usize
}

/// Inclusive upper bound (ns) of bucket `idx`.
fn lat_bucket_upper(idx: usize) -> u64 {
    if idx < LAT_SUB as usize {
        return idx as u64;
    }
    let o = (idx - LAT_SUB as usize) as u32;
    let exp = LAT_SUB_BITS + o / LAT_SUB as u32;
    let sub = u64::from(o % LAT_SUB as u32);
    let width = 1u64 << (exp - LAT_SUB_BITS);
    (1u64 << exp) + (sub + 1) * width - 1
}

/// Inclusive lower bound (ns) of bucket `idx`.
fn lat_bucket_lower(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        lat_bucket_upper(idx - 1) + 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one observation given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let idx = lat_bucket_of(ns);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Reconstructs a histogram from previously captured parts (see
    /// [`LatencyHistogram::buckets`]): the checkpoint/restore path of the
    /// sharded engine round-trips histograms through a flat byte encoding
    /// and needs to rebuild the exact counter state. `count` is derived
    /// from the bucket sums — recording keeps them equal by construction.
    pub fn from_parts(buckets: Vec<u64>, sum_ns: u64, max_ns: u64) -> Self {
        let count = buckets.iter().sum();
        LatencyHistogram {
            buckets,
            count,
            sum_ns,
            max_ns,
        }
    }

    /// The raw bucket counters, lowest bucket first (exactly what
    /// [`LatencyHistogram::from_parts`] consumes). The vector only extends
    /// to the highest observed bucket.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest observation, exact (not bucketed), in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Sum of all observations in nanoseconds (saturating), as exposition
    /// formats report alongside the count.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) in nanoseconds, nearest-rank over
    /// the bucket counts with linear interpolation inside the holding
    /// bucket by rank fraction — the true order statistic lies in the same
    /// bucket, so the report is within one bucket width (12.5%) of it
    /// without quantizing to the bucket-bound lattice. Returns 0 when
    /// empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if seen + c >= rank {
                let lower = lat_bucket_lower(idx);
                // Never report past the true maximum: the last occupied
                // bucket's upper bound can overshoot it.
                let upper = lat_bucket_upper(idx).min(self.max_ns);
                if upper <= lower {
                    return upper;
                }
                let frac = (rank - seen) as f64 / c as f64;
                let interp = lower as f64 + frac * (upper - lower) as f64;
                return interp.round() as u64;
            }
            seen += c;
        }
        self.max_ns
    }

    /// [`LatencyHistogram::quantile_ns`] paired with the sample count it
    /// was computed from, so report emitters can flag quantiles resting on
    /// thin evidence (e.g. fewer than 100 observations) instead of
    /// printing them as if they were as trustworthy as the rest.
    pub fn quantile_ns_with_count(&self, q: f64) -> (u64, u64) {
        (self.quantile_ns(q), self.count)
    }

    /// Median latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 90th-percentile latency in nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile latency in nanoseconds — the deep-tail figure;
    /// meaningful once roughly a thousand observations have landed (below
    /// that it degenerates to the maximum).
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }
}

impl Add for LatencyHistogram {
    type Output = LatencyHistogram;

    fn add(mut self, rhs: LatencyHistogram) -> LatencyHistogram {
        self += rhs;
        self
    }
}

impl AddAssign for LatencyHistogram {
    fn add_assign(&mut self, rhs: LatencyHistogram) {
        if rhs.buckets.len() > self.buckets.len() {
            self.buckets.resize(rhs.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&rhs.buckets) {
            *dst += src;
        }
        self.count += rhs.count;
        self.sum_ns = self.sum_ns.saturating_add(rhs.sum_ns);
        self.max_ns = self.max_ns.max(rhs.max_ns);
    }
}

impl Sum for LatencyHistogram {
    fn sum<I: Iterator<Item = LatencyHistogram>>(iter: I) -> Self {
        iter.fold(LatencyHistogram::default(), Add::add)
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={:.1}µs p90={:.1}µs p99={:.1}µs p99.9={:.1}µs max={:.1}µs",
            self.count,
            self.p50_ns() as f64 / 1_000.0,
            self.p90_ns() as f64 / 1_000.0,
            self.p99_ns() as f64 / 1_000.0,
            self.p999_ns() as f64 / 1_000.0,
            self.max_ns as f64 / 1_000.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_empty_is_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p999_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.sum_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn latency_small_values_are_exact() {
        // Below 8 ns the buckets are one nanosecond wide: quantiles exact.
        let mut h = LatencyHistogram::new();
        for ns in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            h.record_ns(ns);
        }
        assert_eq!(h.p50_ns(), 3);
        assert_eq!(h.quantile_ns(1.0), 7);
        assert_eq!(h.max_ns(), 7);
        assert_eq!(h.sum_ns(), 28);
    }

    #[test]
    fn latency_quantiles_within_relative_error_bound() {
        // Deterministic skewed values across many octaves: every reported
        // quantile interpolates within the bucket holding the true order
        // statistic, so it sits within one bucket width (12.5%) of it.
        let mut values: Vec<u64> = (1..=2_000u64).map(|i| i * i * 37 + 13).collect();
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let (got, n) = h.quantile_ns_with_count(q);
            assert_eq!(n, values.len() as u64);
            assert!(
                (got as f64 - truth as f64).abs() <= truth as f64 * 0.125,
                "q={q}: {got} more than 12.5% away from {truth}"
            );
        }
        assert_eq!(h.quantile_ns(1.0), *values.last().unwrap());
    }

    #[test]
    fn latency_merge_equals_combined_records() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 977 + 11;
            if i % 3 == 0 {
                a.record_ns(v);
            } else {
                b.record_ns(v);
            }
            both.record_ns(v);
        }
        let merged = a.clone() + b.clone();
        assert_eq!(merged, both);
        assert_eq!(merged.p99_ns(), both.p99_ns());
        let mut acc = a.clone();
        acc += b.clone();
        assert_eq!(acc, both);
        assert_eq!([a, b].into_iter().sum::<LatencyHistogram>(), both);
        assert_eq!(
            std::iter::empty::<LatencyHistogram>().sum::<LatencyHistogram>(),
            LatencyHistogram::default()
        );
    }

    #[test]
    fn latency_extreme_values_clamp_without_panic() {
        let mut h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        h.record(Duration::from_secs(3_600));
        h.record_ns(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_ns(), u64::MAX);
        // The clamped bucket still reports no higher than the true max.
        assert!(h.quantile_ns(1.0) <= h.max_ns());
    }

    #[test]
    fn latency_display_reports_microseconds() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(250));
        let s = h.to_string();
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("p99.9"), "{s}");
    }
}
