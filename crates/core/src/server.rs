//! A concurrent request server around the orchestrator.
//!
//! The paper's architecture streams trip requests from mobile apps to a
//! server backend where E-Sharing computes parking assignments (Fig. 3).
//! [`RequestServer`] reproduces that deployment shape: a dedicated worker
//! thread owns the [`ESharing`] state and serves requests arriving over a
//! channel, so many client threads can submit concurrently while decisions
//! stay strictly serialized (the online algorithm is inherently
//! sequential — each decision depends on all earlier ones).

use crate::ESharing;
use crossbeam::channel::{bounded, Sender};
use esharing_geo::Point;
use esharing_placement::online::Decision;
use esharing_placement::PlacementCost;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

enum Command {
    Request {
        destination: Point,
        reply: Sender<Decision>,
    },
    Snapshot {
        reply: Sender<ServerSnapshot>,
    },
    Shutdown,
}

/// A point-in-time view of the server state.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSnapshot {
    /// Open stations at snapshot time.
    pub stations: Vec<Point>,
    /// Accumulated placement cost.
    pub placement: PlacementCost,
    /// Requests served so far.
    pub requests_served: u64,
}

/// Handle for submitting requests to a running server. Cheap to clone;
/// every clone talks to the same worker.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    tx: Sender<Command>,
}

impl ServerHandle {
    /// Submits a trip destination and waits for the decision.
    ///
    /// # Panics
    ///
    /// Panics if the server has been shut down.
    pub fn submit(&self, destination: Point) -> Decision {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Command::Request {
                destination,
                reply: reply_tx,
            })
            .expect("server is running");
        reply_rx.recv().expect("server replies")
    }

    /// Fetches a state snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the server has been shut down.
    pub fn snapshot(&self) -> ServerSnapshot {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Command::Snapshot { reply: reply_tx })
            .expect("server is running");
        reply_rx.recv().expect("server replies")
    }
}

/// The server: owns the worker thread.
#[derive(Debug)]
pub struct RequestServer {
    tx: Sender<Command>,
    worker: Option<JoinHandle<ESharing>>,
    /// Count of requests accepted, readable without a round-trip.
    accepted: Arc<Mutex<u64>>,
}

impl RequestServer {
    /// Starts the server around a bootstrapped system.
    ///
    /// # Panics
    ///
    /// Panics if the system has not been bootstrapped (the worker would
    /// reject every request).
    pub fn start(system: ESharing) -> Self {
        assert!(
            !system.landmarks().is_empty(),
            "bootstrap the system before starting the server"
        );
        let (tx, rx) = bounded::<Command>(1024);
        let accepted = Arc::new(Mutex::new(0u64));
        let accepted_worker = Arc::clone(&accepted);
        let worker = std::thread::spawn(move || {
            let mut system = system;
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    Command::Request { destination, reply } => {
                        let decision = system
                            .handle_request(destination)
                            .expect("server system is bootstrapped");
                        *accepted_worker.lock() += 1;
                        // A dropped reply receiver is fine: client gave up.
                        let _ = reply.send(decision);
                    }
                    Command::Snapshot { reply } => {
                        let _ = reply.send(ServerSnapshot {
                            stations: system.stations(),
                            placement: system.metrics().placement,
                            requests_served: system.metrics().requests_served,
                        });
                    }
                    Command::Shutdown => break,
                }
            }
            system
        });
        RequestServer {
            tx,
            worker: Some(worker),
            accepted,
        }
    }

    /// A handle for submitting requests (cloneable across threads).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            tx: self.tx.clone(),
        }
    }

    /// Requests accepted so far.
    pub fn accepted(&self) -> u64 {
        *self.accepted.lock()
    }

    /// Stops the worker and returns the final system state.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread panicked.
    pub fn shutdown(mut self) -> ESharing {
        let _ = self.tx.send(Command::Shutdown);
        self.worker
            .take()
            .expect("worker present until shutdown")
            .join()
            .expect("worker thread must not panic")
    }
}

impl Drop for RequestServer {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = self.tx.send(Command::Shutdown);
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bootstrapped_system(seed: u64) -> ESharing {
        let mut rng = StdRng::seed_from_u64(seed);
        let history: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let mut system = ESharing::new(SystemConfig::default());
        system.bootstrap(&history);
        system
    }

    #[test]
    fn serves_sequential_requests() {
        let server = RequestServer::start(bootstrapped_system(1));
        let handle = server.handle();
        for i in 0..50 {
            let d = handle.submit(Point::new((i * 17 % 1000) as f64, (i * 31 % 1000) as f64));
            let _ = d.station();
        }
        assert_eq!(server.accepted(), 50);
        let snap = handle.snapshot();
        assert_eq!(snap.requests_served, 50);
        assert!(!snap.stations.is_empty());
        let system = server.shutdown();
        assert_eq!(system.metrics().requests_served, 50);
    }

    #[test]
    fn concurrent_clients_all_served() {
        let server = RequestServer::start(bootstrapped_system(2));
        let mut joins = Vec::new();
        for t in 0..4 {
            let handle = server.handle();
            joins.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                for _ in 0..25 {
                    let p =
                        Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                    let _ = handle.submit(p);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(server.accepted(), 100);
        let snap = server.handle().snapshot();
        assert_eq!(snap.requests_served, 100);
        assert!(snap.placement.total() > 0.0);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let server = RequestServer::start(bootstrapped_system(3));
        let handle = server.handle();
        handle.submit(Point::new(1.0, 1.0));
        drop(server); // must not hang or leak the worker
    }

    #[test]
    #[should_panic(expected = "bootstrap")]
    fn rejects_unbootstrapped_system() {
        let _ = RequestServer::start(ESharing::new(SystemConfig::default()));
    }
}
