//! Forecast ensembles.
//!
//! The paper notes its framework "can be integrated with any prediction
//! engine" (§I). An ensemble is the natural way to exploit that: combine
//! several engines and weight each by its demonstrated accuracy. This
//! module implements inverse-RMSE weighting on a held-out validation
//! split — a standard, robust combination rule that never does much worse
//! than its best member and often beats it.

use crate::series::split_at_fraction;
use crate::{ForecastError, Forecaster};
use esharing_stats::metrics::rmse;

/// A weighted ensemble of forecasters.
///
/// # Examples
///
/// ```
/// use esharing_forecast::{Ensemble, Forecaster, MovingAverage, SeasonalNaive};
///
/// # fn main() -> Result<(), esharing_forecast::ForecastError> {
/// let series: Vec<f64> = (0..96).map(|t| 10.0 + (t % 24) as f64).collect();
/// let mut ensemble = Ensemble::new(vec![
///     Box::new(MovingAverage::new(3)?),
///     Box::new(SeasonalNaive::new(24)?),
/// ])?;
/// ensemble.fit(&series)?;
/// let forecast = ensemble.forecast(&series, 6)?;
/// assert_eq!(forecast.len(), 6);
/// # Ok(())
/// # }
/// ```
pub struct Ensemble {
    members: Vec<Box<dyn Forecaster>>,
    /// Normalized combination weights (uniform until fitted).
    weights: Vec<f64>,
    /// Fraction of the training series held out to estimate weights.
    validation_fraction: f64,
    fitted: bool,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field(
                "members",
                &self.members.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .field("weights", &self.weights)
            .field("fitted", &self.fitted)
            .finish()
    }
}

impl Ensemble {
    /// Creates an ensemble over the given members with uniform weights and
    /// a 25% validation split.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] when `members` is empty.
    pub fn new(members: Vec<Box<dyn Forecaster>>) -> Result<Self, ForecastError> {
        if members.is_empty() {
            return Err(ForecastError::InvalidParameter {
                name: "members",
                reason: "ensemble needs at least one member",
            });
        }
        let n = members.len();
        Ok(Ensemble {
            members,
            weights: vec![1.0 / n as f64; n],
            validation_fraction: 0.25,
            fitted: false,
        })
    }

    /// Overrides the validation fraction (clamped into `[0.05, 0.5]`).
    pub fn with_validation_fraction(mut self, fraction: f64) -> Self {
        self.validation_fraction = fraction.clamp(0.05, 0.5);
        self
    }

    /// The current combination weights (normalized, aligned with the
    /// member order).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Forecaster for Ensemble {
    /// Fits every member, estimates inverse-RMSE weights on a held-out
    /// tail, then refits the members on the full series.
    ///
    /// Members that fail on the validation split (e.g. too little data)
    /// receive weight 0 rather than failing the whole ensemble, as long as
    /// at least one member succeeds.
    fn fit(&mut self, series: &[f64]) -> Result<(), ForecastError> {
        let (train, validation) = split_at_fraction(series, 1.0 - self.validation_fraction);
        let mut scores = vec![0.0; self.members.len()];
        let mut any = false;
        for (k, member) in self.members.iter_mut().enumerate() {
            let ok = member.fit(train).is_ok();
            if !ok || validation.is_empty() {
                continue;
            }
            if let Ok(pred) = member.forecast(train, validation.len()) {
                let err = rmse(&pred, validation);
                scores[k] = 1.0 / (err + 1e-9);
                any = true;
            }
        }
        if !any {
            // No member produced validation forecasts (series too short
            // for the split): fall back to uniform weights over members
            // that fit on the full series.
            for (k, member) in self.members.iter_mut().enumerate() {
                scores[k] = f64::from(u8::from(member.fit(series).is_ok()));
            }
            if scores.iter().sum::<f64>() == 0.0 {
                return Err(ForecastError::SeriesTooShort {
                    needed: 2,
                    got: series.len(),
                });
            }
        } else {
            // Refit the scoring members on the whole series.
            for (k, member) in self.members.iter_mut().enumerate() {
                if scores[k] > 0.0 && member.fit(series).is_err() {
                    scores[k] = 0.0;
                }
            }
        }
        let total: f64 = scores.iter().sum();
        self.weights = scores.into_iter().map(|s| s / total).collect();
        self.fitted = true;
        Ok(())
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        let mut combined = vec![0.0; horizon];
        let mut used_weight = 0.0;
        for (member, &w) in self.members.iter().zip(&self.weights) {
            if w == 0.0 {
                continue;
            }
            let f = member.forecast(history, horizon)?;
            for (acc, v) in combined.iter_mut().zip(&f) {
                *acc += w * v;
            }
            used_weight += w;
        }
        if used_weight == 0.0 {
            return Err(ForecastError::NotFitted);
        }
        for v in combined.iter_mut() {
            *v /= used_weight;
        }
        Ok(combined)
    }

    fn name(&self) -> String {
        format!(
            "Ensemble[{}]",
            self.members
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HoltWinters, MovingAverage, SeasonalNaive};

    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| 30.0 + 12.0 * (t as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect()
    }

    fn members() -> Vec<Box<dyn Forecaster>> {
        vec![
            Box::new(MovingAverage::new(3).expect("valid")),
            Box::new(SeasonalNaive::new(24).expect("valid")),
            Box::new(HoltWinters::hourly().expect("valid")),
        ]
    }

    #[test]
    fn rejects_empty_membership() {
        assert!(matches!(
            Ensemble::new(Vec::new()),
            Err(ForecastError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn must_fit_before_forecast() {
        let e = Ensemble::new(members()).expect("non-empty");
        assert!(matches!(
            e.forecast(&seasonal_series(96), 6),
            Err(ForecastError::NotFitted)
        ));
    }

    #[test]
    fn weights_normalize_and_favor_seasonal_models() {
        let series = seasonal_series(24 * 8);
        let mut e = Ensemble::new(members()).expect("non-empty");
        e.fit(&series).expect("fit");
        let w = e.weights();
        assert_eq!(w.len(), 3);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // On purely seasonal data, the seasonal members crush MA(3).
        assert!(
            w[1] + w[2] > w[0],
            "seasonal weights {w:?} should dominate MA"
        );
    }

    #[test]
    fn ensemble_not_much_worse_than_best_member() {
        let series = seasonal_series(24 * 9);
        let (train, test) = series.split_at(24 * 8);
        let mut e = Ensemble::new(members()).expect("non-empty");
        e.fit(train).expect("fit");
        let ens_rmse = rmse(&e.forecast(train, test.len()).expect("forecast"), test);
        let mut best = f64::INFINITY;
        for mut m in members() {
            m.fit(train).expect("fit");
            let f = m.forecast(train, test.len()).expect("forecast");
            best = best.min(rmse(&f, test));
        }
        assert!(
            ens_rmse <= 2.0 * best + 1e-9,
            "ensemble {ens_rmse:.3} vs best member {best:.3}"
        );
    }

    #[test]
    fn single_member_acts_like_member() {
        let series = seasonal_series(24 * 6);
        let mut e = Ensemble::new(vec![Box::new(SeasonalNaive::new(24).expect("valid"))])
            .expect("non-empty");
        e.fit(&series).expect("fit");
        let mut solo = SeasonalNaive::new(24).expect("valid");
        solo.fit(&series).expect("fit");
        assert_eq!(
            e.forecast(&series, 12).expect("forecast"),
            solo.forecast(&series, 12).expect("forecast")
        );
        assert_eq!(e.weights(), &[1.0]);
    }

    #[test]
    fn short_series_falls_back_to_uniform_fit() {
        // Too short for HoltWinters but fine for MA: the ensemble should
        // survive with the feasible member.
        let series: Vec<f64> = (0..10).map(f64::from).collect();
        let mut e = Ensemble::new(vec![
            Box::new(MovingAverage::new(2).expect("valid")),
            Box::new(HoltWinters::hourly().expect("valid")),
        ])
        .expect("non-empty");
        e.fit(&series).expect("fit should degrade gracefully");
        let f = e.forecast(&series, 3).expect("forecast");
        assert_eq!(f.len(), 3);
        assert_eq!(e.weights()[1], 0.0, "infeasible member must be zeroed");
    }

    #[test]
    fn name_lists_members() {
        let e = Ensemble::new(members()).expect("non-empty");
        let n = e.name();
        assert!(n.contains("SeasonalNaive") && n.contains("HoltWinters"));
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }
}
