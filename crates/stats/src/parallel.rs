//! Deterministic fork–join helpers built on `crossbeam` scoped threads.
//!
//! The hot kernels in this workspace (offline JMS greedy, the 2-D KS grid
//! sweep, the LSTM grid search) all fan the same shape of work out: split an
//! index range into contiguous chunks, run each chunk on a worker, and merge
//! the per-chunk results **in chunk order** so the outcome is bit-identical
//! regardless of thread count or scheduling. This module centralises that
//! pattern so every crate parallelises the same way, with no dependency
//! beyond the already-approved `crossbeam`.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! can be pinned with the `ESHARING_THREADS` environment variable (useful
//! for benchmarking scaling curves or forcing sequential execution with
//! `ESHARING_THREADS=1`).

use std::ops::Range;

/// Number of worker threads to use for parallel sweeps.
///
/// Reads the `ESHARING_THREADS` environment variable (clamped to ≥ 1);
/// falls back to [`std::thread::available_parallelism`], then to 1.
pub fn num_threads() -> usize {
    match std::env::var("ESHARING_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..len` into at most `chunks` contiguous, non-empty ranges
/// covering the whole interval in order.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.clamp(1, len.max(1));
    let size = len.div_ceil(chunks);
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    while start < len {
        let end = (start + size).min(len);
        out.push(start..end);
        start = end;
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

/// Runs `work` over contiguous chunks of `0..len` on a scoped thread pool
/// and returns the per-chunk results **in chunk order**.
///
/// `min_chunk` bounds the smallest chunk worth shipping to a worker; inputs
/// smaller than `2 * min_chunk` (or a worker count of 1) run inline on the
/// calling thread, so small instances pay no spawning overhead.
///
/// Determinism: chunk boundaries depend only on `len` and the worker count,
/// and results are joined in chunk order, so any reduction that is invariant
/// to *where* chunk boundaries fall (e.g. an exact integer count, a max over
/// exactly-computed values, or a first-minimum scan merged in index order)
/// yields bit-identical output for every thread count.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn map_chunks<T, F>(len: usize, min_chunk: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let workers = num_threads()
        .min(len / min_chunk.max(1))
        .clamp(1, len.max(1));
    if workers <= 1 {
        return vec![work(0..len)];
    }
    let ranges = chunk_ranges(len, workers);
    let work = &work;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move |_| work(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed")
}

/// Parallel index map: computes `f(i)` for every `i in 0..n` and returns the
/// results in index order. `min_chunk` as in [`map_chunks`].
pub fn par_map<T, F>(n: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_chunks(n, min_chunk, |r| r.map(&f).collect::<Vec<T>>())
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, chunks);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at len={len} chunks={chunks}");
                    assert!(r.end > r.start || len == 0);
                    next = r.end;
                }
                assert_eq!(next, len);
                assert!(ranges.len() <= chunks.max(1));
            }
        }
    }

    #[test]
    fn par_map_matches_sequential() {
        let got = par_map(257, 1, |i| i * i);
        let want: Vec<usize> = (0..257).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let sums = map_chunks(1000, 1, |r| r.sum::<usize>());
        let total: usize = sums.iter().sum();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn empty_input_is_fine() {
        assert_eq!(par_map(0, 1, |i| i), Vec::<usize>::new());
        let out = map_chunks(0, 1, |r| r.len());
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }
}
