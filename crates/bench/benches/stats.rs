//! Criterion benches for the KS-test implementations — the cost the paper
//! cites as O(n³) for Peacock's exact enumeration vs the O(n²)
//! Fasano–Franceschini variant used in the streaming loop.

use criterion::{criterion_group, BenchmarkId, Criterion};
use esharing_bench::PerfEmitter;
use esharing_geo::Point;
use esharing_stats::ks2d::{
    ff_statistic, ff_statistic_naive, peacock_statistic, peacock_statistic_naive, peacock_test,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn sample(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..1_000.0), rng.gen_range(0.0..1_000.0)))
        .collect()
}

fn bench_ks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ks2d");
    for n in [30usize, 60, 120] {
        let a = sample(n, 1);
        let b = sample(n, 2);
        group.bench_with_input(BenchmarkId::new("peacock_exact", n), &n, |bencher, _| {
            bencher.iter(|| black_box(peacock_statistic(&a, &b)));
        });
        group.bench_with_input(
            BenchmarkId::new("fasano_franceschini", n),
            &n,
            |bencher, _| {
                bencher.iter(|| black_box(ff_statistic(&a, &b)));
            },
        );
    }
    // The full test (statistic + significance) at the streaming window size.
    let a = sample(300, 3);
    let b = sample(200, 4);
    group.bench_function("peacock_test_300v200", |bencher| {
        bencher.iter(|| black_box(peacock_test(&a, &b)));
    });
    group.finish();
}

/// Perf-trajectory emission: times the rank-based KS kernels against their
/// naive oracles at increasing sizes and writes `BENCH_stats.json` at the
/// repo root (see `esharing_bench::perf`).
fn perf_trajectory() {
    let mut perf = PerfEmitter::new("stats");
    for (n, iters) in [(60usize, 9), (120, 7), (240, 5), (480, 3)] {
        let a = sample(n, 1);
        let b = sample(n, 2);
        perf.measure("peacock_statistic", n, iters, || {
            black_box(peacock_statistic(&a, &b))
        });
        perf.measure("peacock_statistic_naive", n, iters, || {
            black_box(peacock_statistic_naive(&a, &b))
        });
        perf.measure("ff_statistic", n, iters, || black_box(ff_statistic(&a, &b)));
        perf.measure("ff_statistic_naive", n, iters, || {
            black_box(ff_statistic_naive(&a, &b))
        });
    }
    match perf.write() {
        Ok(path) => eprintln!("perf trajectory written to {}", path.display()),
        Err(e) => eprintln!("perf trajectory emission failed: {e}"),
    }
}

criterion_group!(benches, bench_ks);

// The offline build stubs `Criterion` as a unit struct, which makes this
// `default()` call trip `default_constructed_unit_structs`; the real crate
// needs it.
#[allow(clippy::default_constructed_unit_structs)]
fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    perf_trajectory();
}
