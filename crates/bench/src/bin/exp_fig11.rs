//! Fig. 11 — Distribution of low-energy e-bikes before and after
//! incentivizing, with the operator's TSP route.
//!
//! The paper shows heatmaps of low-energy bikes: scattered across many
//! stations before incentives, aggregated onto a few after, with a shorter
//! operator route. This harness prints the per-station low-bike counts and
//! the route lengths for both states.

use esharing_bench::Table;
use esharing_charging::{tsp, ChargingCostParams, IncentiveMechanism, Operator, UserModel};
use esharing_core::{ESharing, SystemConfig};
use esharing_dataset::{CityConfig, Fleet, SyntheticCity, TripGenerator};
use esharing_geo::{BBox, Point};
use esharing_stats::Histogram2d;

fn main() {
    let city = SyntheticCity::generate(&CityConfig {
        trips_per_day: 2_500.0,
        fleet_size: 900,
        ..CityConfig::default()
    });
    let mut gen = TripGenerator::new(&city, 7);
    let history = gen.generate_days(0, 3);
    let mut system = ESharing::new(SystemConfig::default());
    system.bootstrap(&history.iter().map(|t| t.end).collect::<Vec<Point>>());
    let mut fleet = Fleet::new(900, city.bbox(), system.config().energy, 11);
    fleet.replay(history.iter());
    let live = gen.generate_days(3, 2);
    fleet.replay(live.iter());
    fleet.apply_idle_day();

    let stations = system.station_energy(&fleet).expect("bootstrapped");
    let total_low: usize = stations.iter().map(|s| s.low_bikes).sum();
    println!(
        "Fig. 11 — low-energy distribution over {} stations, {} low bikes total\n",
        stations.len(),
        total_low
    );

    let mechanism =
        IncentiveMechanism::new(ChargingCostParams::default(), UserModel::default(), 0.7, 42);
    let outcome = mechanism.run_period(&stations);
    let after = Operator::stations_after_incentives(&stations, &outcome);

    let mut t = Table::new(vec![
        "station".into(),
        "x".into(),
        "y".into(),
        "low before".into(),
        "low after".into(),
    ]);
    for (i, (b, a)) in stations.iter().zip(&after).enumerate() {
        if b.low_bikes == 0 && a.low_bikes == 0 {
            continue;
        }
        t.row(vec![
            i.to_string(),
            format!("{:.0}", b.location.x),
            format!("{:.0}", b.location.y),
            b.low_bikes.to_string(),
            a.low_bikes.to_string(),
        ]);
    }
    println!("{t}");

    // Fig. 11's heatmaps: low-bike density before and after incentives.
    let heatmap = |st: &[esharing_charging::StationEnergy]| -> String {
        let mut hist = Histogram2d::new(BBox::square(3_000.0), 40, 16);
        for s in st {
            hist.add(s.location, s.low_bikes as f64);
        }
        hist.render()
    };
    println!("(a) before incentivizing:\n{}", heatmap(&stations));
    println!("(b) after incentivizing:\n{}", heatmap(&after));

    let demand_points = |st: &[esharing_charging::StationEnergy]| -> Vec<Point> {
        st.iter()
            .filter(|s| s.low_bikes > 0)
            .map(|s| s.location)
            .collect()
    };
    let depot = Point::ORIGIN;
    let before_pts = demand_points(&stations);
    let after_pts = demand_points(&after);
    let before_len = tsp::route_length(depot, &before_pts, &tsp::solve(depot, &before_pts));
    let after_len = tsp::route_length(depot, &after_pts, &tsp::solve(depot, &after_pts));
    println!(
        "charging sites: {} -> {} ({} bikes relocated for ${:.0} of incentives)",
        before_pts.len(),
        after_pts.len(),
        outcome.relocated,
        outcome.incentives_paid
    );
    println!(
        "TSP route length: {:.1} km -> {:.1} km ({:.1}% shorter; paper: 17.1 -> 14.1 km, 17.5%)",
        before_len / 1_000.0,
        after_len / 1_000.0,
        100.0 * (before_len - after_len) / before_len
    );
}
