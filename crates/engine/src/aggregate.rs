//! Fleet-level aggregation of per-shard state.
//!
//! Every field of [`SystemMetrics`] is a running sum, so per-shard metrics
//! merge by addition (see `esharing-core`'s `Add` impl) and the derived
//! averages recompute correctly from the merged sums. Snapshots merge the
//! same way: station sets concatenate (zones are disjoint), costs and
//! counters add. Telemetry merges through the same algebra — worker
//! registries fold with [`RegistrySnapshot::fleet_sum`], and the
//! exposition layer renders the fleet totals next to shard-labelled
//! per-worker series.

use crate::lifecycle::LifecycleOps;
use esharing_core::server::ServerSnapshot;
use esharing_core::{LatencyHistogram, SystemMetrics};
use esharing_geo::Point;
use esharing_telemetry::{
    render_prometheus, snapshot_families, EventRecord, MergeMode, MetricFamily, Registry,
    RegistrySnapshot, SloStatus,
};
use serde::{Deserialize, Serialize};

/// One shard's state at snapshot time, decorated with router-side data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// The zone's representative point (rectangle center / Voronoi
    /// anchor).
    pub anchor: Point,
    /// The shard worker's server view (stations, placement cost, served).
    pub server: ServerSnapshot,
    /// The shard's full metric sums.
    pub metrics: SystemMetrics,
    /// KS similarity (percent) at the shard's last periodic drift test.
    pub last_similarity: Option<f64>,
    /// Requests the router shed for this shard (pending queue full).
    pub shed: u64,
    /// Pending-queue depth the router observed at this shard's most
    /// recent shed (0 until the first shed): downstream-ring occupancy on
    /// the fast path, the mailbox-depth mirror on the fallback.
    pub last_shed_depth: u64,
    /// Jobs pending downstream at probe time — ring occupancy (queued
    /// plus in-fetch) on the fast path, mailbox depth on the fallback.
    pub pending_downstream: u64,
    /// The worker's telemetry registry at probe time (empty when the
    /// engine runs with telemetry disabled).
    pub registry: RegistrySnapshot,
}

/// The whole fleet: per-shard parts plus their merged totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Union of the shards' server views.
    pub fleet: ServerSnapshot,
    /// Sum of the shards' metrics.
    pub metrics: SystemMetrics,
    /// Sum of the shards' shed counts.
    pub shed_total: u64,
    /// Fleet-merged metric samples: worker registries summed, the
    /// orchestrator metrics bridged in, and the router's shed counter.
    /// Empty when telemetry is disabled.
    pub registry: RegistrySnapshot,
    /// Merged, time-ordered recent event history (bounded; filled by
    /// `Engine::snapshot`).
    pub events: Vec<EventRecord>,
    /// Events lost to journal/log bounds before this snapshot.
    pub events_dropped: u64,
    /// Shards currently serving (total slots minus killed ones awaiting
    /// recovery). Defaults to the slot count; the engine overwrites it.
    pub shards_active: usize,
    /// Lifetime lifecycle-operation totals (filled by `Engine::snapshot`;
    /// all zero while the lifecycle subsystem is disabled).
    pub lifecycle: LifecycleOps,
    /// Point-in-time SLO verdicts, one per configured rule (filled by
    /// `Engine::snapshot`; empty while the health plane is disabled).
    #[serde(default)]
    pub slo: Vec<SloStatus>,
}

impl EngineSnapshot {
    /// Merges per-shard snapshots into fleet totals. `events` /
    /// `events_dropped` start empty; the engine fills them from its
    /// fleet event log after probing.
    pub fn from_shards(shards: Vec<ShardSnapshot>) -> Self {
        let fleet = merge_server_snapshots(shards.iter().map(|s| &s.server));
        let metrics: SystemMetrics = shards.iter().map(|s| s.metrics).sum();
        let shed_total = shards.iter().map(|s| s.shed).sum();
        let registry = if shards.iter().any(|s| !s.registry.is_empty()) {
            let mut registry = RegistrySnapshot::fleet_sum(shards.iter().map(|s| &s.registry));
            // Bridge the orchestrator running sums in, minus the
            // placement costs the workers already publish live (a Sum
            // merge would double them).
            let mut bridged = metrics;
            bridged.placement = esharing_placement::PlacementCost::ZERO;
            registry.merge_from(&bridged.registry_snapshot());
            registry.merge_from(&router_registry(&shards));
            registry
        } else {
            RegistrySnapshot::default()
        };
        let shards_active = shards.len();
        EngineSnapshot {
            shards,
            fleet,
            metrics,
            shed_total,
            registry,
            events: Vec::new(),
            events_dropped: 0,
            shards_active,
            lifecycle: LifecycleOps::default(),
            slo: Vec::new(),
        }
    }

    /// Renders the snapshot as metric families: the fleet registry's
    /// totals first, then every shard's registry stamped with a `shard`
    /// label (including the per-shard KS drift gauges, which only make
    /// sense under that label). Empty when telemetry is disabled.
    pub fn to_families(&self) -> Vec<MetricFamily> {
        if self.registry.is_empty() {
            return Vec::new();
        }
        let labelled: Vec<RegistrySnapshot> = self
            .shards
            .iter()
            .filter(|s| !s.registry.is_empty())
            .map(|s| s.registry.with_label("shard", &s.shard.to_string()))
            .collect();
        let mut parts: Vec<&RegistrySnapshot> = Vec::with_capacity(labelled.len() + 1);
        parts.push(&self.registry);
        parts.extend(labelled.iter());
        snapshot_families(&parts)
    }

    /// The snapshot in Prometheus text exposition format — exactly what
    /// the engine's `/metrics` endpoint serves.
    pub fn to_prometheus(&self) -> String {
        render_prometheus(&self.to_families())
    }

    /// Serialises the snapshot to a flat JSON document (hand-emitted; the
    /// workspace deliberately carries no JSON dependency) suitable for
    /// dumping alongside `BENCH_engine.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"fleet\": {{ \"stations\": {}, \"requests_served\": {}, \"walking_m\": {:.1}, \"space_m\": {:.1}, \"shed\": {}, \"events_dropped\": {}, \"shards_active\": {}, \"lifecycle_splits\": {}, \"lifecycle_merges\": {}, \"lifecycle_recovers\": {}, \"lifecycle_checkpoints\": {}, {} }},\n",
            self.fleet.stations.len(),
            self.fleet.requests_served,
            self.fleet.placement.walking,
            self.fleet.placement.space,
            self.shed_total,
            self.events_dropped,
            self.shards_active,
            self.lifecycle.splits,
            self.lifecycle.merges,
            self.lifecycle.recovers,
            self.lifecycle.checkpoints,
            latency_json(&self.fleet.latency),
        ));
        out.push_str("  \"slo\": [\n");
        for (i, s) in self.slo.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"slo\": \"{}\", \"breached\": {}, \"burn_fast\": {:.4}, \"burn_slow\": {:.4}, \"breaches\": {}, \"recoveries\": {} }}{}\n",
                s.id,
                s.breached,
                s.burn_fast,
                s.burn_slow,
                s.breaches,
                s.recoveries,
                if i + 1 < self.slo.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            let similarity = match s.last_similarity {
                Some(v) if v.is_finite() => format!("{v:.1}"),
                _ => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{ \"shard\": {}, \"anchor\": [{:.1}, {:.1}], \"stations\": {}, \"requests_served\": {}, \"walking_m\": {:.1}, \"space_m\": {:.1}, \"similarity_percent\": {}, \"shed\": {}, \"shed_last_queue_depth\": {}, \"pending_downstream\": {}, {} }}{}\n",
                s.shard,
                s.anchor.x,
                s.anchor.y,
                s.server.stations.len(),
                s.server.requests_served,
                s.server.placement.walking,
                s.server.placement.space,
                similarity,
                s.shed,
                s.last_shed_depth,
                s.pending_downstream,
                latency_json(&s.server.latency),
                if i + 1 < self.shards.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Lifecycle series for `/metrics`: the active-shard gauge plus one
/// `esharing_lifecycle_ops_total{op=...}` counter per operation kind.
/// Every label is emitted even at zero, so dashboards (and the CI greps)
/// see the full family the moment telemetry is on, lifecycle or not.
pub(crate) fn lifecycle_registry(shards_active: u64, ops: &LifecycleOps) -> RegistrySnapshot {
    let mut r = Registry::new();
    let g = r.gauge(
        "esharing_shards_active",
        "Shards currently serving (excludes killed shards awaiting recovery).",
        MergeMode::Sum,
    );
    r.set(g, shards_active as f64);
    for (op, count) in [
        ("split", ops.splits),
        ("merge", ops.merges),
        ("recover", ops.recovers),
        ("checkpoint", ops.checkpoints),
    ] {
        let c = r.counter_with(
            "esharing_lifecycle_ops_total",
            "Lifecycle operations completed since engine start.",
            &[("op", op)],
        );
        r.add(c, count);
    }
    r.snapshot()
}

/// Re-optimization series for `/metrics`: the hot-swap counter plus the
/// most recent solve duration per mode. Emitted (zeroed) even with the
/// loop disabled, so dashboards and the CI greps see the families the
/// moment telemetry is on.
pub(crate) fn reopt_registry(stats: &crate::reopt::ReoptStats) -> RegistrySnapshot {
    let mut r = Registry::new();
    let c = r.counter(
        "esharing_epoch_swaps_total",
        "Landmark hot-swaps committed by the epochal re-optimization loop.",
    );
    r.add(c, stats.swaps_total);
    for (mode, last_ns, solves) in [
        ("warm", stats.last_warm_ns, stats.warm_solves),
        ("cold", stats.last_cold_ns, stats.cold_solves),
    ] {
        let labels = [("mode", mode)];
        let g = r.gauge_with(
            "esharing_reopt_solve_ns",
            "Duration of the most recent JMS re-solve, by solve mode.",
            MergeMode::Sum,
            &labels,
        );
        r.set(g, last_ns as f64);
        let c = r.counter_with(
            "esharing_reopt_solves_total",
            "JMS re-solves completed by the re-optimization loop, by mode.",
            &labels,
        );
        r.add(c, solves);
    }
    r.snapshot()
}

/// The journal-loss counter for `/metrics`: events overwritten in any
/// bounded journal or the fleet log before a scrape drained them. Zero on
/// a healthy scrape cadence — the CI smoke asserts exactly that.
pub(crate) fn journal_registry(events_dropped: u64) -> RegistrySnapshot {
    let mut r = Registry::new();
    let c = r.counter(
        "esharing_journal_dropped_total",
        "Events lost to bounded journal/log rings before being scraped.",
    );
    r.add(c, events_dropped);
    r.snapshot()
}

/// Router-side series: the shed counter and last-observed shed depth,
/// one labelled sample per shard.
fn router_registry(shards: &[ShardSnapshot]) -> RegistrySnapshot {
    let mut r = Registry::new();
    for s in shards {
        let shard_label = s.shard.to_string();
        let labels = [("shard", shard_label.as_str())];
        let c = r.counter_with(
            "esharing_sheds_total",
            "Requests shed by admission control (shard pending queue full).",
            &labels,
        );
        r.add(c, s.shed);
        let g = r.gauge_with(
            "esharing_shed_last_queue_depth",
            "Pending-queue depth (downstream-ring occupancy, or mailbox depth on the fallback path) observed at the most recent shed.",
            MergeMode::Sum,
            &labels,
        );
        r.set(g, s.last_shed_depth as f64);
        let p = r.gauge_with(
            "esharing_pending_downstream",
            "Jobs pending downstream at probe time (ring occupancy or mailbox depth).",
            MergeMode::Sum,
            &labels,
        );
        r.set(p, s.pending_downstream as f64);
    }
    r.snapshot()
}

/// Decision-latency quantile fields for the hand-emitted JSON dump.
/// Bucketed quantiles (12.5% resolution) in microseconds; see
/// [`LatencyHistogram`].
fn latency_json(latency: &LatencyHistogram) -> String {
    format!(
        "\"latency_count\": {}, \"latency_p50_us\": {:.1}, \"latency_p90_us\": {:.1}, \"latency_p99_us\": {:.1}, \"latency_p999_us\": {:.1}",
        latency.count(),
        latency.p50_ns() as f64 / 1_000.0,
        latency.p90_ns() as f64 / 1_000.0,
        latency.p99_ns() as f64 / 1_000.0,
        latency.p999_ns() as f64 / 1_000.0,
    )
}

/// Merges server snapshots: stations concatenate (disjoint zones), costs,
/// counters and latency histograms sum — merging the histograms *before*
/// taking quantiles is what keeps fleet percentiles honest (averaging
/// per-shard percentiles is not a percentile).
pub fn merge_server_snapshots<'a, I>(parts: I) -> ServerSnapshot
where
    I: IntoIterator<Item = &'a ServerSnapshot>,
{
    let mut merged = ServerSnapshot {
        stations: Vec::new(),
        placement: esharing_placement::PlacementCost::ZERO,
        requests_served: 0,
        latency: LatencyHistogram::new(),
    };
    for part in parts {
        merged.stations.extend_from_slice(&part.stations);
        merged.placement = merged.placement + part.placement;
        merged.requests_served += part.requests_served;
        merged.latency += part.latency.clone();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharing_placement::PlacementCost;

    fn shard(i: usize, stations: usize, served: u64, walk: f64, shed: u64) -> ShardSnapshot {
        let mut latency = LatencyHistogram::new();
        for r in 0..served {
            latency.record_ns((r + 1) * 10_000 * (i as u64 + 1));
        }
        let server = ServerSnapshot {
            stations: (0..stations)
                .map(|s| Point::new(i as f64 * 1000.0 + s as f64, 0.0))
                .collect(),
            placement: PlacementCost::new(walk, stations as f64 * 100.0),
            requests_served: served,
            latency,
        };
        let mut reg = Registry::new();
        let c = reg.counter("esharing_decisions_total", "decisions");
        reg.add(c, served);
        let g = reg.gauge("esharing_ks_d_statistic", "drift", MergeMode::PerShard);
        reg.set(g, 0.1 * (i as f64 + 1.0));
        ShardSnapshot {
            shard: i,
            anchor: Point::new(i as f64 * 1000.0, 0.0),
            server,
            metrics: SystemMetrics {
                placement: PlacementCost::new(walk, stations as f64 * 100.0),
                requests_served: served,
                ..SystemMetrics::default()
            },
            last_similarity: if i == 0 { Some(92.5) } else { None },
            shed,
            last_shed_depth: if shed > 0 { 7 } else { 0 },
            pending_downstream: if shed > 0 { 1 } else { 0 },
            registry: reg.snapshot(),
        }
    }

    #[test]
    fn fleet_totals_are_sums_of_parts() {
        let snap = EngineSnapshot::from_shards(vec![
            shard(0, 3, 40, 1200.0, 2),
            shard(1, 2, 60, 800.0, 0),
        ]);
        assert_eq!(snap.fleet.stations.len(), 5);
        assert_eq!(snap.fleet.requests_served, 100);
        assert_eq!(snap.fleet.placement, PlacementCost::new(2000.0, 500.0));
        assert_eq!(snap.metrics.requests_served, 100);
        assert_eq!(snap.metrics.avg_walk_m(), 20.0);
        assert_eq!(snap.shed_total, 2);
        // The fleet histogram is the sum of the parts, not an average of
        // their quantiles.
        assert_eq!(snap.fleet.latency.count(), 100);
        assert_eq!(
            snap.fleet.latency,
            snap.shards
                .iter()
                .map(|s| s.server.latency.clone())
                .sum::<LatencyHistogram>()
        );
        assert!(snap.fleet.latency.p999_ns() >= snap.fleet.latency.p50_ns());
    }

    #[test]
    fn registry_merges_workers_bridge_and_router() {
        let snap = EngineSnapshot::from_shards(vec![
            shard(0, 3, 40, 1200.0, 2),
            shard(1, 2, 60, 800.0, 0),
        ]);
        // Worker counters fold across shards.
        assert_eq!(snap.registry.counter_total("esharing_decisions_total"), 100);
        // The orchestrator bridge rides in (requests served, walking cost
        // from the live worker gauges only — not double-counted).
        assert_eq!(snap.registry.counter_total("esharing_requests_total"), 100);
        // These synthetic worker registries carry no walking gauge, and
        // the bridge zeroes placement (workers own it live): no doubling.
        assert_eq!(snap.registry.gauge("esharing_walking_cost_m"), Some(0.0));
        // Router shed series carry shard labels and sum to the total.
        assert_eq!(snap.registry.counter_total("esharing_sheds_total"), 2);
        // Per-shard drift gauges are absent from the fleet totals (they
        // only make sense under a shard label) but present in families.
        assert_eq!(snap.registry.gauge("esharing_ks_d_statistic"), None);
        let families = snap.to_families();
        let drift = families
            .iter()
            .find(|f| f.name == "esharing_ks_d_statistic")
            .expect("drift family present");
        assert_eq!(drift.samples.len(), 2);
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE esharing_decisions_total counter"));
        assert!(prom.contains("esharing_sheds_total{shard=\"0\"} 2"));
        assert!(prom.contains("esharing_decisions_total{shard=\"1\"} 60"));
        assert!(prom.contains("esharing_shed_last_queue_depth{shard=\"0\"} 7"));
        assert!(prom.contains("esharing_pending_downstream{shard=\"0\"} 1"));
    }

    #[test]
    fn merge_of_empty_is_zero() {
        let merged = merge_server_snapshots(std::iter::empty());
        assert!(merged.stations.is_empty());
        assert_eq!(merged.requests_served, 0);
        assert_eq!(merged.placement, PlacementCost::ZERO);
    }

    #[test]
    fn json_dump_is_flat_and_complete() {
        let snap = EngineSnapshot::from_shards(vec![
            shard(0, 3, 40, 1200.0, 2),
            shard(1, 2, 60, 800.0, 0),
        ]);
        let json = snap.to_json();
        assert!(json.contains("\"fleet\""));
        assert!(json.contains("\"requests_served\": 100"));
        assert!(json.contains("\"similarity_percent\": 92.5"));
        assert!(json.contains("\"similarity_percent\": null"));
        assert!(json.contains("\"shed\": 2"));
        assert!(json.contains("\"shed_last_queue_depth\": 7"));
        assert!(json.contains("\"pending_downstream\": 1"));
        assert_eq!(json.matches("\"shard\":").count(), 2);
        // Latency fields appear for the fleet and for every shard.
        assert_eq!(json.matches("\"latency_p50_us\":").count(), 3);
        assert_eq!(json.matches("\"latency_p90_us\":").count(), 3);
        assert_eq!(json.matches("\"latency_p99_us\":").count(), 3);
        assert_eq!(json.matches("\"latency_p999_us\":").count(), 3);
        assert!(json.contains("\"latency_count\": 100"));
    }
}
