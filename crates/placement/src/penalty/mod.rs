//! Deviation penalty functions (Eqs. 6–8, Fig. 5).
//!
//! The penalty `g(i, j)` scales the probability of opening a new parking at
//! a destination that deviates from the offline (predicted) solution by
//! walking cost `c = c_ij`. All three types equal 1 at `c = 0` (no penalty
//! when the destination matches a landmark) and decline as the deviation
//! grows, at different rates keyed to the tolerance `L`:
//!
//! * **Type I** (hyperbolic) declines modestly and keeps a heavy tail —
//!   applied when live traffic is *less similar* to history (< 80%),
//! * **Type II** (linear cutoff) plunges to exactly 0 beyond `L` — applied
//!   when traffic is *very similar* (> 95%),
//! * **Type III** (Gaussian) sits between the two — applied when traffic is
//!   *similar* (80–95%).

use esharing_stats::ks2d::SimilarityClass;
use serde::{Deserialize, Serialize};
use std::fmt;

mod polynomial;

pub use polynomial::{FitError, PolynomialPenalty};

/// Which penalty shape is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PenaltyType {
    /// No penalty: `g ≡ 1` (pure Meyerson behaviour, used as the
    /// *no penalty* control in §V-B).
    None,
    /// Hyperbolic decline `1 / (c/L + 1)`.
    TypeI,
    /// Linear decline `1 − c/L`, clamped to 0 beyond `L`.
    TypeII,
    /// Gaussian decline `exp(−c²/L²)`.
    TypeIII,
}

impl PenaltyType {
    /// The penalty type the paper pairs with a KS similarity regime
    /// (§V-C): very similar → II, similar → III, less similar → I.
    pub fn for_similarity(class: SimilarityClass) -> Self {
        match class {
            SimilarityClass::VerySimilar => PenaltyType::TypeII,
            SimilarityClass::Similar => PenaltyType::TypeIII,
            SimilarityClass::LessSimilar => PenaltyType::TypeI,
        }
    }

    /// The paper's stable type number (0 = no penalty) — the encoding used
    /// by journal events and checkpoint serialization.
    pub fn code(self) -> u8 {
        match self {
            PenaltyType::None => 0,
            PenaltyType::TypeI => 1,
            PenaltyType::TypeII => 2,
            PenaltyType::TypeIII => 3,
        }
    }

    /// Inverse of [`PenaltyType::code`]; `None` for an unknown code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(PenaltyType::None),
            1 => Some(PenaltyType::TypeI),
            2 => Some(PenaltyType::TypeII),
            3 => Some(PenaltyType::TypeIII),
            _ => None,
        }
    }
}

impl fmt::Display for PenaltyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PenaltyType::None => "No penalty",
            PenaltyType::TypeI => "Type I",
            PenaltyType::TypeII => "Type II",
            PenaltyType::TypeIII => "Type III",
        };
        f.write_str(name)
    }
}

/// A penalty shape bound to a tolerance level `L` (meters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PenaltyFunction {
    kind: PenaltyType,
    tolerance: f64,
}

impl PenaltyFunction {
    /// Creates a penalty function.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn new(kind: PenaltyType, tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be positive"
        );
        PenaltyFunction { kind, tolerance }
    }

    /// The active shape.
    pub fn kind(&self) -> PenaltyType {
        self.kind
    }

    /// The tolerance `L` in meters.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Replaces the shape, keeping the tolerance.
    pub fn with_kind(self, kind: PenaltyType) -> Self {
        PenaltyFunction { kind, ..self }
    }

    /// Rescales the tolerance (the paper raises `L` when traffic diverges
    /// and scales it back when it returns).
    ///
    /// # Panics
    ///
    /// Panics if the new tolerance would be non-positive.
    pub fn with_tolerance(self, tolerance: f64) -> Self {
        PenaltyFunction::new(self.kind, tolerance)
    }

    /// Evaluates `g(c)` for a walking cost `c ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics (debug) on negative `c`.
    pub fn g(&self, c: f64) -> f64 {
        debug_assert!(c >= 0.0, "walking cost must be non-negative");
        let l = self.tolerance;
        match self.kind {
            PenaltyType::None => 1.0,
            PenaltyType::TypeI => 1.0 / (c / l + 1.0),
            PenaltyType::TypeII => (1.0 - c / l).max(0.0),
            PenaltyType::TypeIII => (-(c * c) / (l * l)).exp(),
        }
    }

    /// First derivative `g′(c)` (Fig. 5(b)); the Type II derivative is 0
    /// beyond the cutoff and −1/L inside it.
    pub fn derivative(&self, c: f64) -> f64 {
        debug_assert!(c >= 0.0, "walking cost must be non-negative");
        let l = self.tolerance;
        match self.kind {
            PenaltyType::None => 0.0,
            PenaltyType::TypeI => -1.0 / (l * (c / l + 1.0).powi(2)),
            PenaltyType::TypeII => {
                if c < l {
                    -1.0 / l
                } else {
                    0.0
                }
            }
            PenaltyType::TypeIII => -2.0 * c / (l * l) * (-(c * c) / (l * l)).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: f64 = 200.0;

    fn all_kinds() -> [PenaltyFunction; 4] {
        [
            PenaltyFunction::new(PenaltyType::None, L),
            PenaltyFunction::new(PenaltyType::TypeI, L),
            PenaltyFunction::new(PenaltyType::TypeII, L),
            PenaltyFunction::new(PenaltyType::TypeIII, L),
        ]
    }

    #[test]
    fn zero_cost_means_no_penalty() {
        for p in all_kinds() {
            assert_eq!(p.g(0.0), 1.0, "{p:?}");
        }
    }

    #[test]
    fn penalties_monotone_nonincreasing() {
        for p in all_kinds() {
            let mut prev = p.g(0.0);
            for step in 1..=40 {
                let g = p.g(step as f64 * 25.0);
                assert!(g <= prev + 1e-12, "{p:?} increased at step {step}");
                assert!((0.0..=1.0).contains(&g));
                prev = g;
            }
        }
    }

    #[test]
    fn type_ii_cuts_off_at_tolerance() {
        let p = PenaltyFunction::new(PenaltyType::TypeII, L);
        assert_eq!(p.g(L), 0.0);
        assert_eq!(p.g(3.0 * L), 0.0);
        assert_eq!(p.g(L / 2.0), 0.5);
    }

    #[test]
    fn type_i_keeps_tail_above_point_two_at_3l() {
        // "Type I ... maintains the probability over 0.2 even when the cost
        // goes beyond 3L" (§III-D).
        let p = PenaltyFunction::new(PenaltyType::TypeI, L);
        assert!(p.g(3.0 * L) >= 0.2);
        assert!(p.g(3.0 * L) - 0.25 < 1e-12); // exactly 1/4 at 3L
    }

    #[test]
    fn type_iii_between_i_and_ii_in_mid_range() {
        let p1 = PenaltyFunction::new(PenaltyType::TypeI, L);
        let p2 = PenaltyFunction::new(PenaltyType::TypeII, L);
        let p3 = PenaltyFunction::new(PenaltyType::TypeIII, L);
        // Beyond the tolerance, the ordering is II < III < I.
        for c in [1.2 * L, 1.5 * L, 2.0 * L] {
            assert!(p2.g(c) <= p3.g(c) && p3.g(c) <= p1.g(c), "at {c}");
        }
    }

    #[test]
    fn type_ii_plunges_fastest_inside_tolerance() {
        // "Type II is designed to plunge much faster than the others."
        let half = L / 2.0;
        let gi = PenaltyFunction::new(PenaltyType::TypeI, L).g(half);
        let gii = PenaltyFunction::new(PenaltyType::TypeII, L).g(half);
        let giii = PenaltyFunction::new(PenaltyType::TypeIII, L).g(half);
        assert!(gii < giii && gii < gi);
    }

    #[test]
    fn derivatives_match_numeric() {
        for p in all_kinds() {
            for c in [1.0, 50.0, 150.0, 250.0, 500.0] {
                let h = 1e-5;
                let numeric = (p.g(c + h) - p.g(c - h)) / (2.0 * h);
                assert!(
                    (numeric - p.derivative(c)).abs() < 1e-6,
                    "{p:?} at c={c}: numeric {numeric} vs {}",
                    p.derivative(c)
                );
            }
        }
    }

    #[test]
    fn similarity_mapping_matches_section_v_c() {
        assert_eq!(
            PenaltyType::for_similarity(SimilarityClass::VerySimilar),
            PenaltyType::TypeII
        );
        assert_eq!(
            PenaltyType::for_similarity(SimilarityClass::Similar),
            PenaltyType::TypeIII
        );
        assert_eq!(
            PenaltyType::for_similarity(SimilarityClass::LessSimilar),
            PenaltyType::TypeI
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_tolerance() {
        let _ = PenaltyFunction::new(PenaltyType::TypeI, 0.0);
    }

    #[test]
    fn builders_preserve_fields() {
        let p = PenaltyFunction::new(PenaltyType::TypeI, L)
            .with_kind(PenaltyType::TypeIII)
            .with_tolerance(400.0);
        assert_eq!(p.kind(), PenaltyType::TypeIII);
        assert_eq!(p.tolerance(), 400.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(PenaltyType::TypeII.to_string(), "Type II");
        assert_eq!(PenaltyType::None.to_string(), "No penalty");
    }
}
