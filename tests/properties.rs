//! Property-based tests over the core data structures and invariants.

use e_sharing::charging::{tsp, ChargingCostParams};
use e_sharing::geo::{geohash, BBox, Grid, LatLon, NearestNeighborIndex, Point};
use e_sharing::linalg::Matrix;
use e_sharing::placement::offline::jms_greedy;
use e_sharing::placement::penalty::{PenaltyFunction, PenaltyType};
use e_sharing::placement::PlpInstance;
use e_sharing::stats::ks2d::{ff_statistic, peacock_statistic};
use e_sharing::stats::{Ecdf, RunningStats};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-5_000.0..5_000.0f64, -5_000.0..5_000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_point(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- geometry -------------------------------------------------------

    #[test]
    fn distance_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn distance_symmetry_and_identity(a in arb_point(), b in arb_point()) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
        prop_assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn grid_snap_within_half_diagonal(p in arb_point(), size in 1.0..500.0f64) {
        let grid = Grid::new(size);
        let snapped = grid.snap(p);
        prop_assert!(p.distance(snapped) <= grid.cell_diagonal() / 2.0 + 1e-9);
        // Idempotent.
        prop_assert_eq!(grid.snap(snapped), snapped);
    }

    #[test]
    fn bbox_from_points_contains_all(pts in arb_points(40)) {
        let bbox = BBox::from_points(pts.iter().copied()).expect("non-empty");
        for p in &pts {
            prop_assert!(bbox.contains(*p));
        }
        prop_assert!(bbox.contains(bbox.center()));
    }

    #[test]
    fn bbox_clamp_is_inside_and_idempotent(p in arb_point(), q in arb_point(), r in arb_point()) {
        let bbox = BBox::new(p, q);
        let clamped = bbox.clamp(r);
        prop_assert!(bbox.contains(clamped));
        prop_assert_eq!(bbox.clamp(clamped), clamped);
    }

    // ---- geohash --------------------------------------------------------

    #[test]
    fn geohash_roundtrip_within_cell(
        lat in -89.9..89.9f64,
        lon in -179.9..179.9f64,
        precision in 1usize..=12,
    ) {
        let c = LatLon::new(lat, lon).expect("valid");
        let hash = geohash::encode(c, precision).expect("encode");
        prop_assert_eq!(hash.len(), precision);
        let (decoded, err) = geohash::decode(&hash).expect("decode");
        prop_assert!((decoded.lat() - lat).abs() <= err.lat_err + 1e-12);
        prop_assert!((decoded.lon() - lon).abs() <= err.lon_err + 1e-12);
        // Re-encoding the decoded center reproduces the hash.
        prop_assert_eq!(geohash::encode(decoded, precision).expect("encode"), hash);
    }

    // ---- nearest-neighbour index -----------------------------------------

    #[test]
    fn nn_index_matches_brute_force(pts in arb_points(60), query in arb_point()) {
        let mut index = NearestNeighborIndex::new(250.0);
        for &p in &pts {
            index.insert(p);
        }
        let (got, gd) = index.nearest(query).expect("non-empty");
        let bd = pts
            .iter()
            .map(|p| query.distance(*p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((gd - bd).abs() < 1e-9, "index {gd} vs brute {bd}");
        prop_assert!((query.distance(got) - gd).abs() < 1e-9);
    }

    #[test]
    fn nn_index_len_tracks_inserts_and_removes(pts in arb_points(30)) {
        let mut index = NearestNeighborIndex::new(100.0);
        for &p in &pts {
            index.insert(p);
        }
        prop_assert_eq!(index.len(), pts.len());
        for &p in &pts {
            prop_assert!(index.remove(p));
        }
        prop_assert!(index.is_empty());
    }

    // ---- statistics -------------------------------------------------------

    #[test]
    fn ecdf_is_monotone_cdf(values in proptest::collection::vec(-1e6..1e6f64, 1..60)) {
        let ecdf = Ecdf::new(values.clone()).expect("finite values");
        prop_assert_eq!(ecdf.eval(f64::MIN), 0.0);
        prop_assert_eq!(ecdf.eval(ecdf.max()), 1.0);
        let probe = [-1e7, -10.0, 0.0, 10.0, 1e7];
        for w in probe.windows(2) {
            prop_assert!(ecdf.eval(w[0]) <= ecdf.eval(w[1]) + 1e-12);
        }
    }

    #[test]
    fn running_stats_merge_equals_sequential(
        a in proptest::collection::vec(-1e3..1e3f64, 1..50),
        b in proptest::collection::vec(-1e3..1e3f64, 1..50),
    ) {
        let sequential: RunningStats = a.iter().chain(b.iter()).copied().collect();
        let mut left: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), sequential.count());
        prop_assert!((left.mean() - sequential.mean()).abs() < 1e-9);
        prop_assert!(
            (left.population_variance() - sequential.population_variance()).abs() < 1e-6
        );
    }

    #[test]
    fn ks_statistic_bounds_and_symmetry(
        a in arb_points(25),
        b in arb_points(25),
    ) {
        let d = ff_statistic(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - ff_statistic(&b, &a)).abs() < 1e-12);
        // FF restricts Peacock's split points, so it never exceeds it.
        prop_assert!(d <= peacock_statistic(&a, &b) + 1e-12);
        // Identical samples are indistinguishable.
        prop_assert_eq!(ff_statistic(&a, &a), 0.0);
    }

    // ---- linear algebra ---------------------------------------------------

    #[test]
    fn matvec_is_linear(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
        alpha in -3.0..3.0f64,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Matrix::xavier(rows, cols, &mut rng);
        let x: Vec<f64> = (0..cols).map(|i| i as f64 - 1.5).collect();
        let ax = m.matvec(&x);
        let scaled: Vec<f64> = x.iter().map(|v| v * alpha).collect();
        let a_scaled = m.matvec(&scaled);
        for (u, v) in a_scaled.iter().zip(&ax) {
            prop_assert!((u - alpha * v).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_involution_preserves_norm(rows in 1usize..7, cols in 1usize..7, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Matrix::xavier(rows, cols, &mut rng);
        let t = m.transpose();
        prop_assert_eq!(t.rows(), cols);
        prop_assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
        prop_assert_eq!(t.transpose(), m);
    }

    // ---- penalty functions -------------------------------------------------

    #[test]
    fn penalties_stay_in_unit_interval_and_decline(
        tolerance in 10.0..1_000.0f64,
        c1 in 0.0..5_000.0f64,
        c2 in 0.0..5_000.0f64,
    ) {
        for kind in [PenaltyType::None, PenaltyType::TypeI, PenaltyType::TypeII, PenaltyType::TypeIII] {
            let p = PenaltyFunction::new(kind, tolerance);
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            prop_assert!((0.0..=1.0).contains(&p.g(lo)));
            prop_assert!(p.g(hi) <= p.g(lo) + 1e-12, "{kind:?} not monotone");
            prop_assert!(p.derivative(lo) <= 1e-12, "{kind:?} derivative positive");
        }
    }

    // ---- facility location ---------------------------------------------------

    #[test]
    fn jms_solution_is_feasible_and_nearest_assigned(
        pts in arb_points(25),
        opening in 10.0..20_000.0f64,
    ) {
        let inst = PlpInstance::with_uniform_cost(pts, opening);
        let sol = jms_greedy(&inst);
        prop_assert!(!sol.open.is_empty());
        prop_assert_eq!(sol.assignment.len(), inst.len());
        for (client, &fac) in sol.assignment.iter().enumerate() {
            prop_assert!(sol.open.contains(&fac));
            let assigned = inst.clients()[fac].distance(inst.clients()[client]);
            for &o in &sol.open {
                prop_assert!(
                    inst.clients()[o].distance(inst.clients()[client]) >= assigned - 1e-9
                );
            }
        }
    }

    #[test]
    fn jms_within_factor_of_single_facility_bound(pts in arb_points(20), opening in 10.0..20_000.0f64) {
        let inst = PlpInstance::with_uniform_cost(pts, opening);
        let greedy = inst.cost_of(&jms_greedy(&inst)).total();
        // The best single-facility solution upper-bounds OPT, so the
        // 1.61-approximation guarantee transfers: greedy <= 1.61 x OPT
        // <= 1.61 x best_single. (Greedy CAN slightly exceed best_single
        // itself — its cluster-serving pick is not always the 1-median.)
        let best_single = (0..inst.len())
            .map(|i| inst.cost_of(&inst.assign_nearest(&[i])).total())
            .fold(f64::INFINITY, f64::min);
        prop_assert!(greedy <= 1.61 * best_single + 1e-9);
    }

    // ---- charging -------------------------------------------------------------

    #[test]
    fn eq10_equals_positional_sum(
        loads in proptest::collection::vec(0usize..30, 1..20),
        q in 0.0..200.0f64,
        d in 0.0..20.0f64,
        b in 0.0..10.0f64,
    ) {
        let params = ChargingCostParams::new(q, d, b);
        let by_position: f64 = loads
            .iter()
            .enumerate()
            .map(|(t, &l)| params.station_cost(l, t))
            .sum();
        let closed_form = params.total_cost(loads.len(), loads.iter().sum());
        prop_assert!((by_position - closed_form).abs() < 1e-6);
    }

    #[test]
    fn savings_ratio_monotone_in_m(n in 2usize..40, q in 0.1..100.0f64, d in 0.1..20.0f64) {
        let params = ChargingCostParams::new(q, d, 2.0);
        for m in 1..n {
            prop_assert!(params.savings_ratio(n, m) > params.savings_ratio(n, m + 1) - 1e-12);
        }
        prop_assert_eq!(params.savings_ratio(n, n), 0.0);
    }

    #[test]
    fn two_opt_never_longer_than_nearest_neighbor(pts in arb_points(15)) {
        let depot = Point::ORIGIN;
        let nn = tsp::nearest_neighbor(depot, &pts);
        let improved = tsp::two_opt(depot, &pts, &nn);
        let nn_len = tsp::route_length(depot, &pts, &nn);
        let improved_len = tsp::route_length(depot, &pts, &improved);
        prop_assert!(improved_len <= nn_len + 1e-9);
        // Both remain permutations (route_length validates).
    }

    #[test]
    fn held_karp_optimal_among_heuristics(pts in arb_points(8)) {
        let depot = Point::ORIGIN;
        let exact = tsp::route_length(depot, &pts, &tsp::held_karp(depot, &pts));
        let nn = tsp::nearest_neighbor(depot, &pts);
        let two = tsp::two_opt(depot, &pts, &nn);
        prop_assert!(exact <= tsp::route_length(depot, &pts, &nn) + 1e-9);
        prop_assert!(exact <= tsp::route_length(depot, &pts, &two) + 1e-9);
    }
}
