//! The synthetic city model.
//!
//! Trip destinations in real bike-sharing data cluster around points of
//! interest, and the *kind* of POI controls when demand peaks: offices and
//! subway stations in weekday rush hours, recreation and restaurants on
//! weekend afternoons (§V-C observes exactly this weekday/weekend split in
//! the KS similarity matrix). The city model captures this with a set of
//! weighted POIs, each carrying a diurnal demand profile per category.

use esharing_geo::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The functional category of a point of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoiCategory {
    /// Metro/subway entrances — weekday commute peaks in both directions.
    Subway,
    /// Office blocks — weekday morning arrival peak.
    Office,
    /// Residential compounds — weekday evening arrival peak, weekend base.
    Residential,
    /// Parks and recreation — weekend midday peak.
    Recreation,
    /// University campuses — steady weekday daytime demand.
    University,
    /// Restaurants and nightlife — lunch/dinner peaks, stronger weekends.
    Restaurant,
}

impl PoiCategory {
    /// All categories, in a fixed order.
    pub const ALL: [PoiCategory; 6] = [
        PoiCategory::Subway,
        PoiCategory::Office,
        PoiCategory::Residential,
        PoiCategory::Recreation,
        PoiCategory::University,
        PoiCategory::Restaurant,
    ];

    /// Relative arrival rate at `hour` (0–23). Profiles are unit-less
    /// multipliers; the generator scales them to the configured trips/day.
    pub fn arrival_profile(self, hour: u64, weekend: bool) -> f64 {
        debug_assert!(hour < 24);
        let h = hour as usize;
        // Hand-shaped 24-hour profiles (index = hour). Values are relative.
        const COMMUTE_AM: [f64; 24] = [
            0.1, 0.05, 0.02, 0.02, 0.05, 0.3, 1.0, 2.5, 3.0, 1.8, 0.8, 0.6, 0.6, 0.5, 0.5, 0.6,
            0.8, 1.2, 1.0, 0.7, 0.5, 0.4, 0.3, 0.2,
        ];
        const COMMUTE_PM: [f64; 24] = [
            0.2, 0.1, 0.05, 0.02, 0.02, 0.1, 0.3, 0.5, 0.6, 0.5, 0.5, 0.6, 0.7, 0.6, 0.5, 0.6, 1.2,
            2.5, 3.0, 2.0, 1.2, 0.8, 0.5, 0.3,
        ];
        const MIDDAY: [f64; 24] = [
            0.1, 0.05, 0.02, 0.02, 0.05, 0.1, 0.3, 0.6, 1.0, 1.5, 2.0, 2.4, 2.5, 2.4, 2.2, 2.0,
            1.8, 1.5, 1.2, 1.0, 0.8, 0.5, 0.3, 0.2,
        ];
        const MEALS: [f64; 24] = [
            0.3, 0.1, 0.05, 0.02, 0.02, 0.05, 0.2, 0.4, 0.6, 0.7, 1.0, 2.0, 2.2, 1.2, 0.8, 0.8,
            1.0, 1.8, 2.5, 2.2, 1.5, 1.0, 0.7, 0.5,
        ];
        const FLAT_LOW: [f64; 24] = [
            0.2, 0.1, 0.05, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
            0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3,
        ];
        match (self, weekend) {
            (PoiCategory::Office, false) => COMMUTE_AM[h],
            (PoiCategory::Office, true) => 0.15 * FLAT_LOW[h],
            (PoiCategory::Subway, false) => 0.5 * COMMUTE_AM[h] + 0.5 * COMMUTE_PM[h],
            (PoiCategory::Subway, true) => 0.4 * MIDDAY[h],
            (PoiCategory::Residential, false) => COMMUTE_PM[h],
            (PoiCategory::Residential, true) => 0.7 * FLAT_LOW[h],
            (PoiCategory::Recreation, false) => 0.3 * MIDDAY[h],
            (PoiCategory::Recreation, true) => 1.8 * MIDDAY[h],
            (PoiCategory::University, false) => 0.9 * MIDDAY[h],
            (PoiCategory::University, true) => 0.3 * MIDDAY[h],
            (PoiCategory::Restaurant, false) => 0.6 * MEALS[h],
            (PoiCategory::Restaurant, true) => 1.3 * MEALS[h],
        }
    }
}

/// A point of interest anchoring trip demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Location in planar city coordinates (meters).
    pub location: Point,
    /// Functional category (drives the diurnal profile).
    pub category: PoiCategory,
    /// Relative popularity weight (≥ 0).
    pub weight: f64,
    /// Spatial scatter of arrivals around the POI (Gaussian σ, meters).
    pub scatter: f64,
}

/// Configuration for [`SyntheticCity::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    /// Side of the square study field in meters (paper: 3 000 m).
    pub side: f64,
    /// Number of POIs per category.
    pub pois_per_category: usize,
    /// Mean trips per day across the whole field.
    pub trips_per_day: f64,
    /// Fleet size (number of distinct bikes).
    pub fleet_size: usize,
    /// Number of distinct users.
    pub user_count: usize,
    /// Spatial scatter of arrivals around POIs (meters).
    pub poi_scatter: f64,
    /// RNG seed controlling POI placement.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            side: 3_000.0,
            pois_per_category: 5,
            trips_per_day: 4_000.0,
            fleet_size: 1_200,
            user_count: 5_000,
            poi_scatter: 90.0,
            seed: 2017,
        }
    }
}

/// A generated city: a study field plus its weighted POIs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticCity {
    bbox: BBox,
    pois: Vec<Poi>,
    config: CityConfig,
}

impl SyntheticCity {
    /// Generates a city deterministically from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.side` is not positive or no POIs are requested.
    pub fn generate(config: &CityConfig) -> Self {
        assert!(config.side > 0.0, "city side must be positive");
        assert!(
            config.pois_per_category > 0,
            "need at least one POI per category"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let bbox = BBox::square(config.side);
        // Keep POIs away from the field edge so arrival scatter mostly
        // stays inside.
        let margin = (config.side * 0.08).min(200.0);
        let mut pois = Vec::new();
        for &category in &PoiCategory::ALL {
            for _ in 0..config.pois_per_category {
                let location = Point::new(
                    rng.gen_range(margin..config.side - margin),
                    rng.gen_range(margin..config.side - margin),
                );
                let weight = rng.gen_range(0.5..1.5);
                pois.push(Poi {
                    location,
                    category,
                    weight,
                    scatter: config.poi_scatter,
                });
            }
        }
        SyntheticCity {
            bbox,
            pois,
            config: config.clone(),
        }
    }

    /// The study field.
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// All POIs.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// The generating configuration.
    pub fn config(&self) -> &CityConfig {
        &self.config
    }

    /// Per-POI expected arrivals for one hour:
    /// `weight × profile(hour, weekend)`, rescaled so a full day across the
    /// city sums to roughly `trips_per_day`.
    pub fn poi_arrival_rates(&self, hour: u64, weekend: bool) -> Vec<f64> {
        let raw: Vec<f64> = self
            .pois
            .iter()
            .map(|p| p.weight * p.category.arrival_profile(hour, weekend))
            .collect();
        // Normalizing constant: total raw demand over a weekday.
        let total_day: f64 = (0..24)
            .map(|h| {
                self.pois
                    .iter()
                    .map(|p| p.weight * p.category.arrival_profile(h, weekend))
                    .sum::<f64>()
            })
            .sum();
        let scale = if total_day > 0.0 {
            self.config.trips_per_day / total_day
        } else {
            0.0
        };
        raw.into_iter().map(|r| r * scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CityConfig::default();
        let a = SyntheticCity::generate(&cfg);
        let b = SyntheticCity::generate(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_city() {
        let a = SyntheticCity::generate(&CityConfig::default());
        let b = SyntheticCity::generate(&CityConfig {
            seed: 999,
            ..CityConfig::default()
        });
        assert_ne!(a.pois()[0].location, b.pois()[0].location);
    }

    #[test]
    fn pois_inside_field() {
        let city = SyntheticCity::generate(&CityConfig::default());
        assert_eq!(city.pois().len(), 6 * 5);
        for poi in city.pois() {
            assert!(city.bbox().contains(poi.location));
            assert!(poi.weight > 0.0);
        }
    }

    #[test]
    fn daily_rate_sums_to_configured_volume() {
        let city = SyntheticCity::generate(&CityConfig::default());
        for weekend in [false, true] {
            let total: f64 = (0..24)
                .map(|h| city.poi_arrival_rates(h, weekend).iter().sum::<f64>())
                .sum();
            let expected = city.config().trips_per_day;
            assert!(
                (total - expected).abs() < 1e-6,
                "weekend={weekend}: total {total} vs {expected}"
            );
        }
    }

    #[test]
    fn office_peaks_in_weekday_morning() {
        let am = PoiCategory::Office.arrival_profile(8, false);
        let night = PoiCategory::Office.arrival_profile(3, false);
        let weekend = PoiCategory::Office.arrival_profile(8, true);
        assert!(am > 10.0 * night);
        assert!(am > 5.0 * weekend);
    }

    #[test]
    fn recreation_peaks_on_weekend() {
        let wk = PoiCategory::Recreation.arrival_profile(13, false);
        let we = PoiCategory::Recreation.arrival_profile(13, true);
        assert!(we > 3.0 * wk);
    }

    #[test]
    fn residential_peaks_weekday_evening() {
        let evening = PoiCategory::Residential.arrival_profile(18, false);
        let morning = PoiCategory::Residential.arrival_profile(8, false);
        assert!(evening > 3.0 * morning);
    }

    #[test]
    fn profiles_nonnegative_everywhere() {
        for &cat in &PoiCategory::ALL {
            for hour in 0..24 {
                for weekend in [false, true] {
                    assert!(cat.arrival_profile(hour, weekend) >= 0.0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_side() {
        let _ = SyntheticCity::generate(&CityConfig {
            side: 0.0,
            ..CityConfig::default()
        });
    }
}
