//! Aggregate system metrics and decision-latency telemetry.

use esharing_placement::PlacementCost;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// The decision-latency histogram now lives in `esharing-telemetry`
/// (shared by the metrics registry); re-exported so existing callers keep
/// their `esharing_core::LatencyHistogram` path.
pub use esharing_telemetry::LatencyHistogram;

/// Running totals across the lifetime of an [`ESharing`](crate::ESharing)
/// instance.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// Tier-1 placement cost (walking + space, meters).
    pub placement: PlacementCost,
    /// Live requests handled by the online algorithm.
    pub requests_served: u64,
    /// Tier-2: total maintenance cost in dollars (tour cost + incentives).
    pub maintenance_cost: f64,
    /// Incentives paid to users in dollars.
    pub incentives_paid: f64,
    /// Bikes recharged by operators.
    pub bikes_charged: u64,
    /// Low bikes left uncharged when shifts ended.
    pub bikes_missed: u64,
    /// Operator distance travelled in meters.
    pub operator_distance_m: f64,
    /// Maintenance periods executed.
    pub maintenance_periods: u64,
}

impl SystemMetrics {
    /// Average walking distance per served request, in meters.
    pub fn avg_walk_m(&self) -> f64 {
        if self.requests_served == 0 {
            0.0
        } else {
            self.placement.walking / self.requests_served as f64
        }
    }

    /// Fraction of low bikes charged across all maintenance periods.
    pub fn charged_fraction(&self) -> f64 {
        let total = self.bikes_charged + self.bikes_missed;
        if total == 0 {
            1.0
        } else {
            self.bikes_charged as f64 / total as f64
        }
    }

    /// Bridges these running sums into telemetry registry samples, so the
    /// exposition layer can publish orchestrator metrics next to the
    /// serving-path registry. The bridge commutes with merging: summing
    /// [`SystemMetrics`] and snapshotting equals snapshotting each part
    /// and merging the snapshots (every sample here is a running sum).
    pub fn registry_snapshot(&self) -> esharing_telemetry::RegistrySnapshot {
        use esharing_telemetry::{MergeMode, Registry};
        let mut r = Registry::new();
        let c = r.counter(
            "esharing_requests_total",
            "Live requests handled by the online algorithm.",
        );
        r.add(c, self.requests_served);
        let c = r.counter(
            "esharing_bikes_charged_total",
            "Bikes recharged by operators.",
        );
        r.add(c, self.bikes_charged);
        let c = r.counter(
            "esharing_bikes_missed_total",
            "Low bikes left uncharged when shifts ended.",
        );
        r.add(c, self.bikes_missed);
        let c = r.counter(
            "esharing_maintenance_periods_total",
            "Tier-2 maintenance periods executed.",
        );
        r.add(c, self.maintenance_periods);
        let g = r.gauge(
            "esharing_walking_cost_m",
            "Accumulated walking cost, meters.",
            MergeMode::Sum,
        );
        r.set(g, self.placement.walking);
        let g = r.gauge(
            "esharing_space_cost_m",
            "Accumulated space-occupation cost, meters.",
            MergeMode::Sum,
        );
        r.set(g, self.placement.space);
        let g = r.gauge(
            "esharing_maintenance_cost_dollars",
            "Total maintenance cost (tour + incentives), dollars.",
            MergeMode::Sum,
        );
        r.set(g, self.maintenance_cost);
        let g = r.gauge(
            "esharing_incentives_paid_dollars",
            "Incentives paid to users, dollars.",
            MergeMode::Sum,
        );
        r.set(g, self.incentives_paid);
        let g = r.gauge(
            "esharing_operator_distance_m",
            "Operator distance travelled, meters.",
            MergeMode::Sum,
        );
        r.set(g, self.operator_distance_m);
        r.snapshot()
    }
}

/// Merging: every field of [`SystemMetrics`] is a running *sum*, so
/// per-shard metrics from a partitioned deployment combine by plain
/// addition, and the derived averages ([`SystemMetrics::avg_walk_m`],
/// [`SystemMetrics::charged_fraction`]) recompute correctly from the merged
/// sums. This is what lets the sharded engine report fleet-level totals
/// that match a single instance having served the merged stream.
impl Add for SystemMetrics {
    type Output = SystemMetrics;

    fn add(self, rhs: SystemMetrics) -> SystemMetrics {
        SystemMetrics {
            placement: self.placement + rhs.placement,
            requests_served: self.requests_served + rhs.requests_served,
            maintenance_cost: self.maintenance_cost + rhs.maintenance_cost,
            incentives_paid: self.incentives_paid + rhs.incentives_paid,
            bikes_charged: self.bikes_charged + rhs.bikes_charged,
            bikes_missed: self.bikes_missed + rhs.bikes_missed,
            operator_distance_m: self.operator_distance_m + rhs.operator_distance_m,
            maintenance_periods: self.maintenance_periods + rhs.maintenance_periods,
        }
    }
}

impl AddAssign for SystemMetrics {
    fn add_assign(&mut self, rhs: SystemMetrics) {
        *self = *self + rhs;
    }
}

impl Sum for SystemMetrics {
    fn sum<I: Iterator<Item = SystemMetrics>>(iter: I) -> Self {
        iter.fold(SystemMetrics::default(), Add::add)
    }
}

impl fmt::Display for SystemMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "requests served : {}", self.requests_served)?;
        writeln!(f, "placement cost  : {}", self.placement)?;
        writeln!(f, "avg walk        : {:.1} m", self.avg_walk_m())?;
        writeln!(f, "maintenance     : ${:.2}", self.maintenance_cost)?;
        writeln!(f, "incentives      : ${:.2}", self.incentives_paid)?;
        write!(
            f,
            "charged         : {:.1}% ({} of {})",
            100.0 * self.charged_fraction(),
            self.bikes_charged,
            self.bikes_charged + self.bikes_missed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_metrics_safe() {
        let m = SystemMetrics::default();
        assert_eq!(m.avg_walk_m(), 0.0);
        assert_eq!(m.charged_fraction(), 1.0);
    }

    #[test]
    fn averages() {
        let m = SystemMetrics {
            placement: PlacementCost::new(1000.0, 500.0),
            requests_served: 10,
            bikes_charged: 3,
            bikes_missed: 1,
            ..SystemMetrics::default()
        };
        assert_eq!(m.avg_walk_m(), 100.0);
        assert_eq!(m.charged_fraction(), 0.75);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = SystemMetrics {
            placement: PlacementCost::new(100.0, 20.0),
            requests_served: 4,
            maintenance_cost: 7.5,
            incentives_paid: 2.5,
            bikes_charged: 3,
            bikes_missed: 1,
            operator_distance_m: 900.0,
            maintenance_periods: 1,
        };
        let b = SystemMetrics {
            placement: PlacementCost::new(50.0, 10.0),
            requests_served: 6,
            maintenance_cost: 1.5,
            incentives_paid: 0.5,
            bikes_charged: 2,
            bikes_missed: 2,
            operator_distance_m: 100.0,
            maintenance_periods: 2,
        };
        let m = a + b;
        assert_eq!(m.placement, PlacementCost::new(150.0, 30.0));
        assert_eq!(m.requests_served, 10);
        assert_eq!(m.maintenance_cost, 9.0);
        assert_eq!(m.incentives_paid, 3.0);
        assert_eq!(m.bikes_charged, 5);
        assert_eq!(m.bikes_missed, 3);
        assert_eq!(m.operator_distance_m, 1000.0);
        assert_eq!(m.maintenance_periods, 3);
        // Averages recompute from the merged sums, not from averaging the
        // per-part averages.
        assert_eq!(m.avg_walk_m(), 150.0 / 10.0);
        assert_eq!(m.charged_fraction(), 5.0 / 8.0);
        let mut acc = a;
        acc += b;
        assert_eq!(acc, m);
        assert_eq!([a, b].into_iter().sum::<SystemMetrics>(), m);
        assert_eq!(
            std::iter::empty::<SystemMetrics>().sum::<SystemMetrics>(),
            SystemMetrics::default()
        );
    }

    #[test]
    fn shard_metrics_merge_matches_merged_stream() {
        // Aggregation invariant behind the sharded engine: running two
        // disjoint request streams through two independent accumulators and
        // summing the metrics equals accumulating the merged stream in one.
        let streams: [&[(f64, u64)]; 2] = [
            &[(120.0, 1), (80.0, 1), (250.0, 1)],
            &[(40.0, 1), (310.0, 1)],
        ];
        let mut per_shard = Vec::new();
        let mut merged_stream = SystemMetrics::default();
        for stream in streams {
            let mut shard = SystemMetrics::default();
            for &(walk, served) in stream {
                let delta = SystemMetrics {
                    placement: PlacementCost::new(walk, 0.0),
                    requests_served: served,
                    ..SystemMetrics::default()
                };
                shard += delta;
                merged_stream += delta;
            }
            per_shard.push(shard);
        }
        let fleet: SystemMetrics = per_shard.into_iter().sum();
        assert_eq!(fleet, merged_stream);
        assert_eq!(fleet.requests_served, 5);
        assert_eq!(fleet.avg_walk_m(), 800.0 / 5.0);
    }

    #[test]
    fn registry_bridge_commutes_with_metric_merge() {
        // Satellite invariant: SystemMetrics Add/Sum and RegistrySnapshot
        // merging are the same operation through the bridge — snapshotting
        // the sum equals merging the parts' snapshots.
        let a = SystemMetrics {
            placement: PlacementCost::new(100.0, 20.0),
            requests_served: 4,
            maintenance_cost: 7.5,
            incentives_paid: 2.5,
            bikes_charged: 3,
            bikes_missed: 1,
            operator_distance_m: 900.0,
            maintenance_periods: 1,
        };
        let b = SystemMetrics {
            placement: PlacementCost::new(50.0, 10.0),
            requests_served: 6,
            maintenance_cost: 1.5,
            incentives_paid: 0.5,
            bikes_charged: 2,
            bikes_missed: 2,
            operator_distance_m: 100.0,
            maintenance_periods: 2,
        };
        let merged_then_snap = (a + b).registry_snapshot();
        let snap_then_merged = esharing_telemetry::RegistrySnapshot::fleet_sum([
            &a.registry_snapshot(),
            &b.registry_snapshot(),
        ]);
        assert_eq!(merged_then_snap, snap_then_merged);
        assert_eq!(
            snap_then_merged.counter_total("esharing_requests_total"),
            10
        );
        assert_eq!(
            snap_then_merged.gauge("esharing_walking_cost_m"),
            Some(150.0)
        );
        assert_eq!(
            [a, b]
                .into_iter()
                .sum::<SystemMetrics>()
                .registry_snapshot(),
            snap_then_merged
        );
    }

    #[test]
    fn display_includes_key_lines() {
        let m = SystemMetrics::default();
        let s = m.to_string();
        assert!(s.contains("requests served"));
        assert!(s.contains("charged"));
    }
}
