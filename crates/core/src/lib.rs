//! # esharing-core
//!
//! End-to-end orchestration of the two-tier E-Sharing framework.
//!
//! This crate wires the substrates together in the order of the paper's
//! Fig. 3 system architecture:
//!
//! 1. the **prediction engine** forecasts future usage patterns,
//! 2. forecasts (or the historical window itself) feed the **offline
//!    placement** algorithm, producing the landmark parking set,
//! 3. a periodic **two-sample test** compares the live request
//!    distribution with history,
//! 4. the **online placement** algorithm makes real-time decisions guided
//!    by the offline solution,
//! 5. the system computes **incentives** to aggregate low-battery bikes,
//! 6. cooperating users relocate the bikes and the operator runs a
//!    shortened charging tour.
//!
//! Main entry points:
//!
//! * [`SystemConfig`] — all knobs in one place,
//! * [`ESharing`] — the orchestrator: feed it a historical window, then
//!   stream live requests and run maintenance periods,
//! * [`Simulation`] — binds a [`SyntheticCity`] workload to the
//!   orchestrator and replays whole days,
//! * [`server`] — a concurrent request server demonstrating deployment of
//!   the same pipeline behind channels. For horizontal scale, the
//!   `esharing-engine` crate shards this pipeline across city zones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod events;
mod metrics;
mod orchestrator;
pub mod server;
mod simulation;
pub mod telemetry;

pub use config::SystemConfig;
pub use events::{EventDrivenSim, TriggerPolicy};
pub use metrics::{LatencyHistogram, SystemMetrics};
pub use orchestrator::{ESharing, MaintenanceReport, NotBootstrapped, SystemCheckpoint};
pub use simulation::{Simulation, SimulationReport};
pub use telemetry::{QueuePath, ServeTrace, TelemetryProbe, WorkerTelemetry};

// Re-exported so serving layers and binaries can configure telemetry
// without a direct `esharing-telemetry` dependency.
pub use esharing_telemetry::TelemetryConfig;

// Re-exported for convenience so binaries need only depend on the core.
pub use esharing_dataset::SyntheticCity;
