//! The online incentive mechanism (§IV-C, Algorithm 3).
//!
//! Stations holding low-battery bikes are paired with *aggregation
//! targets*; arriving users who pick up at a source station are offered a
//! uniform reward `v = α(q + t·d)/|L_i|` to ride a low-energy bike to the
//! target instead of a fresh one (the target is chosen at equal riding
//! distance so no extra mileage is charged). A user accepts when the extra
//! walking to their final destination stays within their personal limit
//! `c_u` and the reward meets their reservation price `v*_u` (Eq. 13). The
//! offer loop continues "until `L_i → ∅`" or the arrival budget for the
//! service period runs out.

use crate::ChargingCostParams;
use esharing_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Energy summary of one station entering a maintenance period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StationEnergy {
    /// Station location.
    pub location: Point,
    /// Number of low-battery bikes parked there (`|L_i|`).
    pub low_bikes: usize,
    /// Expected user arrivals at this station during the service period
    /// (how many offers can be made).
    pub arrivals: usize,
}

/// Population model of user cooperation (Eq. 13 heterogeneity).
///
/// Each arriving user draws an accepted maximum extra walking distance
/// `c_u` and a minimum reward `v*_u` from exponential-ish distributions
/// around the configured means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserModel {
    /// Mean accepted extra walking distance in meters.
    pub mean_max_walk: f64,
    /// Mean reservation reward in dollars.
    pub mean_min_reward: f64,
}

impl Default for UserModel {
    fn default() -> Self {
        UserModel {
            // ~3-minute extra walk tolerated on average; half a dollar
            // expected for the favour. Calibrated so that the paper's
            // per-bike offers of $1–3 attract the bulk of users, matching
            // the >80% charged rate Table VI reports at α = 0.4.
            mean_max_walk: 250.0,
            mean_min_reward: 0.5,
        }
    }
}

impl UserModel {
    /// Draws one user's `(c_u, v*_u)`.
    fn sample(&self, rng: &mut StdRng) -> (f64, f64) {
        // Exponential draws keep heterogeneity with a heavy-ish tail.
        let exp = |rng: &mut StdRng, mean: f64| -> f64 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            -mean * u.ln()
        };
        (exp(rng, self.mean_max_walk), exp(rng, self.mean_min_reward))
    }
}

/// Result of running the incentive pass over one maintenance period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncentiveOutcome {
    /// Per-station low-bike counts after relocation (same order as input).
    pub remaining_low: Vec<usize>,
    /// Index of each station's aggregation target (self-index for targets).
    pub target_of: Vec<usize>,
    /// Total incentives paid in dollars.
    pub incentives_paid: f64,
    /// Bikes successfully relocated.
    pub relocated: usize,
    /// Offers made (accepted + declined).
    pub offers_made: usize,
}

impl IncentiveOutcome {
    /// Stations that still hold at least one low bike.
    pub fn stations_needing_service(&self) -> usize {
        self.remaining_low.iter().filter(|&&l| l > 0).count()
    }
}

/// The online incentive mechanism.
#[derive(Debug, Clone)]
pub struct IncentiveMechanism {
    params: ChargingCostParams,
    users: UserModel,
    /// The paper's cooperation/expenditure balance `α ∈ [0, 1]`
    /// (`α = 0` disables incentives).
    alpha: f64,
    seed: u64,
}

impl IncentiveMechanism {
    /// Creates a mechanism with incentive level `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn new(params: ChargingCostParams, users: UserModel, alpha: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1], got {alpha}"
        );
        IncentiveMechanism {
            params,
            users,
            alpha,
            seed,
        }
    }

    /// The incentive level `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Chooses each station's aggregation target: the nearest station with
    /// a strictly larger low-bike load (ties broken towards lower index);
    /// stations that are local maxima aggregate onto themselves. This
    /// realizes "aggregate low-energy bikes together at some locations k
    /// such that a majority of them has energy below the threshold".
    pub fn choose_targets(stations: &[StationEnergy]) -> Vec<usize> {
        stations
            .iter()
            .enumerate()
            .map(|(i, s)| {
                stations
                    .iter()
                    .enumerate()
                    .filter(|&(j, t)| {
                        j != i
                            && (t.low_bikes > s.low_bikes || (t.low_bikes == s.low_bikes && j < i))
                    })
                    .min_by(|&(_, a), &(_, b)| {
                        s.location
                            .distance(a.location)
                            .partial_cmp(&s.location.distance(b.location))
                            .expect("finite distances")
                    })
                    .map(|(j, _)| j)
                    .unwrap_or(i)
            })
            .collect()
    }

    /// Runs one maintenance period of offers over the stations.
    ///
    /// For every source station (one whose target is another station), up
    /// to `arrivals` users are offered `v = α(q + t·d)/|L_i|` — `t` being
    /// the station's position in the would-be service sequence — to ride
    /// one low bike to the target. Offers stop when the station's low
    /// bikes are exhausted.
    ///
    /// With `α = 0` the offer is zero, no user accepts (any positive
    /// reservation beats it), and the outcome equals the status quo.
    pub fn run_period(&self, stations: &[StationEnergy]) -> IncentiveOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let target_of = Self::choose_targets(stations);
        let mut remaining: Vec<usize> = stations.iter().map(|s| s.low_bikes).collect();
        let mut incentives_paid = 0.0;
        let mut relocated = 0usize;
        let mut offers_made = 0usize;
        for (i, station) in stations.iter().enumerate() {
            let target = target_of[i];
            if target == i || station.low_bikes == 0 {
                continue;
            }
            // Offer value: budgeted from the visit this station would have
            // needed, split uniformly over its low bikes (Eq. 12). The
            // sequence position t is approximated by the station's index in
            // load order, a stand-in for its TSP position.
            let t = i;
            let offer = self.alpha * self.params.station_saving(t) / station.low_bikes as f64;
            let separation = station.location.distance(stations[target].location);
            // Only the station's *original* low bikes are offered onward;
            // bikes relocated here from elsewhere stay (otherwise chained
            // hops would pay the Eq. 12 budget several times over).
            let mut movable = station.low_bikes;
            for _ in 0..station.arrivals {
                if movable == 0 || remaining[i] == 0 {
                    break;
                }
                offers_made += 1;
                let (c_u, v_star) = self.users.sample(&mut rng);
                // The target k is chosen at the same riding distance as the
                // user's own destination j*, so the user's *extra walking*
                // is |d(k, j*) − d(j, j*)|, which depends on where j* lies
                // relative to the two stations: ~0 for destinations toward
                // k, up to the full separation for destinations away from
                // it. Model it as uniform over [0, separation].
                let extra_walk = rng.gen_range(0.0..=separation);
                // Eq. 13: accept iff extra walking below the user's limit
                // and the offer at or above the reservation reward.
                if extra_walk < c_u && offer >= v_star && offer > 0.0 {
                    remaining[i] -= 1;
                    remaining[target] += 1;
                    movable -= 1;
                    relocated += 1;
                    incentives_paid += offer;
                }
            }
        }
        IncentiveOutcome {
            remaining_low: remaining,
            target_of,
            incentives_paid,
            relocated,
            offers_made,
        }
    }

    /// Full-information benchmark: instead of the uniform offer, each
    /// accepting user is paid exactly their reservation reward `v*_u`
    /// (still capped by the per-station Eq. 12 budget `α·Δ_i`).
    ///
    /// The paper deliberately avoids this — "users are not patient to
    /// participate in any extended bidding process" and reservation prices
    /// are private — so this method serves as the oracle upper bound that
    /// quantifies how much the uniform offer leaves on the table (see
    /// `exp_ablations`, ablation 7).
    pub fn run_period_personalized(&self, stations: &[StationEnergy]) -> IncentiveOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let target_of = Self::choose_targets(stations);
        let mut remaining: Vec<usize> = stations.iter().map(|s| s.low_bikes).collect();
        let mut incentives_paid = 0.0;
        let mut relocated = 0usize;
        let mut offers_made = 0usize;
        for (i, station) in stations.iter().enumerate() {
            let target = target_of[i];
            if target == i || station.low_bikes == 0 {
                continue;
            }
            let mut budget = self.alpha * self.params.station_saving(i);
            let separation = station.location.distance(stations[target].location);
            let mut movable = station.low_bikes;
            for _ in 0..station.arrivals {
                if movable == 0 || remaining[i] == 0 || budget <= 0.0 {
                    break;
                }
                offers_made += 1;
                let (c_u, v_star) = self.users.sample(&mut rng);
                let extra_walk = rng.gen_range(0.0..=separation);
                // The oracle pays exactly the reservation price when the
                // walk is acceptable and the budget covers it.
                if extra_walk < c_u && v_star <= budget && v_star > 0.0 {
                    remaining[i] -= 1;
                    remaining[target] += 1;
                    movable -= 1;
                    relocated += 1;
                    incentives_paid += v_star;
                    budget -= v_star;
                }
            }
        }
        IncentiveOutcome {
            remaining_low: remaining,
            target_of,
            incentives_paid,
            relocated,
            offers_made,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_stations() -> Vec<StationEnergy> {
        vec![
            StationEnergy {
                location: Point::new(0.0, 0.0),
                low_bikes: 2,
                arrivals: 50,
            },
            StationEnergy {
                location: Point::new(100.0, 0.0),
                low_bikes: 8,
                arrivals: 50,
            },
            StationEnergy {
                location: Point::new(2_000.0, 0.0),
                low_bikes: 3,
                arrivals: 50,
            },
        ]
    }

    #[test]
    fn targets_point_to_heavier_neighbors() {
        let t = IncentiveMechanism::choose_targets(&three_stations());
        // Station 0 (2 bikes) -> station 1 (8, nearest heavier).
        // Station 1 is the global max -> itself.
        // Station 2 (3 bikes) -> station 1.
        assert_eq!(t, vec![1, 1, 1]);
    }

    #[test]
    fn equal_loads_tie_break_deterministically() {
        let stations = vec![
            StationEnergy {
                location: Point::new(0.0, 0.0),
                low_bikes: 4,
                arrivals: 10,
            },
            StationEnergy {
                location: Point::new(50.0, 0.0),
                low_bikes: 4,
                arrivals: 10,
            },
        ];
        let t = IncentiveMechanism::choose_targets(&stations);
        // Lower index wins the tie: 0 is its own target, 1 aggregates to 0.
        assert_eq!(t, vec![0, 0]);
    }

    #[test]
    fn alpha_zero_relocates_nothing() {
        let m =
            IncentiveMechanism::new(ChargingCostParams::default(), UserModel::default(), 0.0, 1);
        let out = m.run_period(&three_stations());
        assert_eq!(out.relocated, 0);
        assert_eq!(out.incentives_paid, 0.0);
        assert_eq!(out.remaining_low, vec![2, 8, 3]);
        assert_eq!(out.stations_needing_service(), 3);
    }

    #[test]
    fn full_alpha_aggregates_nearby_station() {
        let m =
            IncentiveMechanism::new(ChargingCostParams::default(), UserModel::default(), 1.0, 2);
        let out = m.run_period(&three_stations());
        // Station 0 is 100 m from its target with generous offers: most of
        // its 2 bikes should relocate. Station 2 is 1.9 km away; nearly all
        // users reject the walk.
        assert!(out.remaining_low[0] < 2, "nearby station kept its bikes");
        assert!(out.relocated > 0);
        assert!(out.incentives_paid > 0.0);
        // Bike conservation.
        assert_eq!(out.remaining_low.iter().sum::<usize>(), 13);
    }

    #[test]
    fn higher_alpha_relocates_at_least_as_much() {
        let stations = three_stations();
        let mut last = 0usize;
        for (k, alpha) in [0.0, 0.4, 0.7, 1.0].into_iter().enumerate() {
            let m = IncentiveMechanism::new(
                ChargingCostParams::default(),
                UserModel::default(),
                alpha,
                99, // same seed -> same user draws
            );
            let out = m.run_period(&stations);
            assert!(
                out.relocated >= last || k == 0,
                "alpha {alpha} relocated {} < previous {last}",
                out.relocated
            );
            last = out.relocated;
        }
    }

    #[test]
    fn offers_respect_arrival_budget() {
        let stations = vec![
            StationEnergy {
                location: Point::new(0.0, 0.0),
                low_bikes: 100,
                arrivals: 5,
            },
            StationEnergy {
                location: Point::new(10.0, 0.0),
                low_bikes: 200,
                arrivals: 0,
            },
        ];
        let m =
            IncentiveMechanism::new(ChargingCostParams::default(), UserModel::default(), 1.0, 3);
        let out = m.run_period(&stations);
        assert!(out.offers_made <= 5);
        assert!(out.relocated <= 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let m =
            IncentiveMechanism::new(ChargingCostParams::default(), UserModel::default(), 0.7, 42);
        assert_eq!(
            m.run_period(&three_stations()),
            m.run_period(&three_stations())
        );
    }

    #[test]
    fn personalized_pays_no_more_per_bike() {
        // The oracle pays each user their reservation, never above the
        // per-station budget; for the same cooperation level it is at
        // least as payment-efficient per relocated bike as the uniform
        // offer.
        let stations = three_stations();
        let m =
            IncentiveMechanism::new(ChargingCostParams::default(), UserModel::default(), 1.0, 5);
        let uniform = m.run_period(&stations);
        let oracle = m.run_period_personalized(&stations);
        assert!(oracle.relocated > 0);
        let per_bike_uniform = uniform.incentives_paid / uniform.relocated.max(1) as f64;
        let per_bike_oracle = oracle.incentives_paid / oracle.relocated.max(1) as f64;
        assert!(
            per_bike_oracle <= per_bike_uniform + 1e-9,
            "oracle {per_bike_oracle:.2} vs uniform {per_bike_uniform:.2}"
        );
        // Budget bound: per source station, paid <= alpha * saving.
        let params = ChargingCostParams::default();
        let paid_total = oracle.incentives_paid;
        let budget_total: f64 = stations
            .iter()
            .enumerate()
            .filter(|(i, s)| oracle.target_of[*i] != *i && s.low_bikes > 0)
            .map(|(i, _)| params.station_saving(i))
            .sum();
        assert!(paid_total <= budget_total + 1e-9);
    }

    #[test]
    fn personalized_respects_alpha_zero() {
        let m =
            IncentiveMechanism::new(ChargingCostParams::default(), UserModel::default(), 0.0, 6);
        let out = m.run_period_personalized(&three_stations());
        assert_eq!(out.relocated, 0);
        assert_eq!(out.incentives_paid, 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_above_one() {
        let _ =
            IncentiveMechanism::new(ChargingCostParams::default(), UserModel::default(), 1.5, 1);
    }
}
