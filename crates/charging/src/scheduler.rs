//! Demand-aware maintenance scheduling.
//!
//! §V-E closes with: "A solution is to schedule the operators more
//! frequently during rush hours to the low-energy demand sites." This
//! module turns that remark into a planner: given the hourly demand
//! profile and a budget of operator dispatches per day, it places the
//! dispatches so that expected demand is covered as evenly as possible —
//! rush hours receive proportionally more service.
//!
//! The placement minimizes the maximum demand mass between consecutive
//! dispatches (a minimax 1-D partition, solved exactly by binary search
//! over the answer + greedy feasibility).

use serde::{Deserialize, Serialize};

/// A day's dispatch schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchSchedule {
    /// Hours (0–23) at which an operator is dispatched, ascending.
    pub hours: Vec<u32>,
    /// The largest demand mass any dispatch has to absorb (the minimax
    /// objective value).
    pub worst_interval_demand: f64,
}

impl DispatchSchedule {
    /// Number of dispatches.
    pub fn len(&self) -> usize {
        self.hours.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.hours.is_empty()
    }
}

/// Greedy feasibility: can `dispatches` cuts keep every chunk of the
/// profile at or below `cap`? A dispatch at hour `h` absorbs all demand
/// accumulated since the previous dispatch, i.e. hours `(prev, h]`.
fn feasible(profile: &[f64], dispatches: usize, cap: f64) -> Option<Vec<u32>> {
    let mut hours = Vec::with_capacity(dispatches);
    let mut acc = 0.0;
    for (h, &d) in profile.iter().enumerate() {
        if d > cap {
            return None; // one hour alone exceeds the cap
        }
        if acc + d > cap {
            // Dispatch at the end of the previous hour.
            hours.push(h.saturating_sub(1) as u32);
            acc = d;
            if hours.len() > dispatches {
                return None;
            }
        } else {
            acc += d;
        }
    }
    if acc > 0.0 || hours.is_empty() {
        hours.push((profile.len() - 1) as u32);
    }
    if hours.len() > dispatches {
        return None;
    }
    Some(hours)
}

/// Plans `dispatches` operator dispatch hours over a 24-hour (or arbitrary
/// length) demand profile, minimizing the worst per-interval demand.
///
/// # Panics
///
/// Panics if the profile is empty, contains negative/non-finite entries,
/// or `dispatches == 0`.
pub fn plan_dispatches(profile: &[f64], dispatches: usize) -> DispatchSchedule {
    assert!(!profile.is_empty(), "demand profile must be non-empty");
    assert!(dispatches > 0, "need at least one dispatch");
    assert!(
        profile.iter().all(|d| d.is_finite() && *d >= 0.0),
        "demand must be finite and non-negative"
    );
    let total: f64 = profile.iter().sum();
    if total == 0.0 {
        // No demand: one token dispatch at end of day.
        return DispatchSchedule {
            hours: vec![(profile.len() - 1) as u32],
            worst_interval_demand: 0.0,
        };
    }
    let max_hour = profile.iter().copied().fold(0.0, f64::max);
    // Binary search the minimax cap in [max_hour, total].
    let mut lo = max_hour;
    let mut hi = total;
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if feasible(profile, dispatches, mid).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let hours = feasible(profile, dispatches, hi).expect("hi is feasible by construction");
    DispatchSchedule {
        hours,
        worst_interval_demand: hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A commuter profile: morning and evening rush.
    fn rush_profile() -> Vec<f64> {
        let mut p = vec![1.0; 24];
        p[7..10].fill(20.0);
        p[17..20].fill(25.0);
        p
    }

    fn worst_gap(profile: &[f64], hours: &[u32]) -> f64 {
        let mut worst = 0.0f64;
        let mut acc = 0.0;
        let mut next = 0usize;
        for (h, &d) in profile.iter().enumerate() {
            acc += d;
            if next < hours.len() && hours[next] as usize == h {
                worst = worst.max(acc);
                acc = 0.0;
                next += 1;
            }
        }
        worst.max(acc)
    }

    #[test]
    fn single_dispatch_absorbs_everything() {
        let p = rush_profile();
        let s = plan_dispatches(&p, 1);
        assert_eq!(s.len(), 1);
        let total: f64 = p.iter().sum();
        assert!((s.worst_interval_demand - total).abs() / total < 0.01);
    }

    #[test]
    fn more_dispatches_never_hurt() {
        let p = rush_profile();
        let mut prev = f64::INFINITY;
        for k in 1..=8 {
            let s = plan_dispatches(&p, k);
            assert!(
                s.worst_interval_demand <= prev + 1e-9,
                "k={k}: {} > {prev}",
                s.worst_interval_demand
            );
            assert!(s.len() <= k);
            prev = s.worst_interval_demand;
        }
    }

    #[test]
    fn rush_hours_attract_dispatches() {
        let p = rush_profile();
        let s = plan_dispatches(&p, 6);
        // At least half the dispatches should land inside/next to the rush
        // windows (hours 6..10 and 16..20).
        let near_rush = s
            .hours
            .iter()
            .filter(|&&h| (6..=10).contains(&h) || (16..=20).contains(&h))
            .count();
        assert!(
            near_rush * 2 >= s.len(),
            "only {near_rush} of {} dispatches near rush: {:?}",
            s.len(),
            s.hours
        );
    }

    #[test]
    fn objective_matches_realized_worst_gap() {
        let p = rush_profile();
        for k in [2usize, 3, 5] {
            let s = plan_dispatches(&p, k);
            let realized = worst_gap(&p, &s.hours);
            assert!(
                realized <= s.worst_interval_demand + 1e-6,
                "k={k}: realized {realized} vs bound {}",
                s.worst_interval_demand
            );
        }
    }

    #[test]
    fn uniform_profile_splits_evenly() {
        let p = vec![4.0; 24];
        let s = plan_dispatches(&p, 4);
        // 96 total over 4 dispatches: worst interval ~24.
        assert!((s.worst_interval_demand - 24.0).abs() < 4.1);
        assert_eq!(s.len(), 4);
        assert!(s.hours.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn zero_demand_token_schedule() {
        let s = plan_dispatches(&[0.0; 24], 3);
        assert_eq!(s.hours, vec![23]);
        assert_eq!(s.worst_interval_demand, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one dispatch")]
    fn zero_dispatches_panics() {
        let _ = plan_dispatches(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_profile_panics() {
        let _ = plan_dispatches(&[], 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_demand_panics() {
        let _ = plan_dispatches(&[1.0, -2.0], 1);
    }
}
