//! # esharing-engine
//!
//! The sharded serving engine: zone-partitioned online placement behind a
//! backpressured router, with replay-driven load generation.
//!
//! The paper's deployment (Fig. 3) streams app requests into a server
//! backend; `esharing-core`'s `RequestServer` reproduces that shape with
//! **one** worker thread owning the whole city — correct, but a hard
//! throughput ceiling, because the online algorithm serializes every
//! decision. Dockless fleets are spatially partitionable, though: capacity
//! allocation and station-location work routinely treats the city as
//! independent zones. This crate exploits exactly that decomposition:
//!
//! * a [`ShardMap`] partitions the city — uniform grid, or Voronoi cells
//!   anchored on the offline solution's landmarks (demand-balanced) — and
//!   routes each destination to its zone in O(zones) arithmetic;
//! * each shard owns a full `ESharing` pipeline for its zone (offline
//!   landmarks, deviation-penalty online placement, its own `RankedSample`
//!   KS drift monitor). On the default shared-nothing fast path
//!   ([`DecisionPath::SyncShared`]) the submitting thread decides
//!   **inline** under the shard's seat — no mailbox, no reply channel, no
//!   thread handoff — while the emulated downstream fetch drains through a
//!   bounded lock-free ring on a per-shard worker; the original
//!   one-worker-per-shard mailbox architecture remains available as
//!   [`DecisionPath::Mailbox`] for baseline comparison;
//! * the [`Engine`] router applies admission control: a full pending queue
//!   (ring or mailbox) sheds the request to a
//!   [`EngineDecision::Degraded`] fallback (the zone's nearest offline
//!   landmark) instead of blocking the caller;
//! * an aggregator merges per-shard snapshots and metrics into fleet
//!   totals ([`EngineSnapshot`]), exploiting that every metric is a sum;
//! * a [`replay`](crate::replay::replay) driver feeds recorded trip
//!   streams into either backend at a configurable offered rate and
//!   reports throughput and latency percentiles;
//! * telemetry rides the whole stack: each shard worker owns a metrics
//!   registry and event journal (`esharing-telemetry`), the aggregator
//!   merges them fleet-wide, and [`Engine::serve_telemetry`] exposes the
//!   live run over HTTP (`/metrics` Prometheus text, `/metrics.json`,
//!   `/events`) — scrapeable mid-flight;
//! * with [`LifecycleConfig`] enabled the shard set is **elastic**: shards
//!   checkpoint their full decision state ([`ShardCheckpoint`]), journal
//!   admitted requests to a per-shard write-ahead log, split under load /
//!   merge when idle (zones bisected or retargeted live, router table
//!   swapped atomically, in-flight requests rerouted — never dropped), and
//!   recover from a kill by checkpoint restore + WAL-suffix replay,
//!   reconverging bit-identically with an unkilled run (see the
//!   [`lifecycle`](crate::lifecycle) module);
//! * a [`HealthConfig`]-gated **fleet health plane** rides the drain
//!   workers: per-shard scalars and registry snapshots roll into a
//!   fixed-memory in-process time-series store, declarative SLOs burn
//!   against it at multiple windows (fast + slow, Google-SRE style), and
//!   an always-on flight recorder freezes a canonical-JSON "black box"
//!   of recent per-decision samples on every breach or lifecycle op —
//!   served live at `/flight/<id>` and dumped under `results/`.
//!
//! Per-zone semantics are unchanged: each shard runs the paper's
//! Algorithm 2 verbatim on its zone's stream, and an engine with a single
//! shard reproduces the single-worker server's decisions **bit-identically**
//! (`tests/equivalence.rs` asserts this on a 2 000-request replay).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod checkpoint;
mod engine;
mod fastpath;
mod health;
pub mod lifecycle;
pub mod reopt;
pub mod replay;
mod shard;
mod shard_map;

pub use aggregate::{merge_server_snapshots, EngineSnapshot, ShardSnapshot};
pub use checkpoint::{CheckpointError, ShardCheckpoint};
pub use engine::{
    Admission, DecisionPath, Engine, EngineClosed, EngineConfig, EngineDecision,
    EngineScrapeSource, Partition,
};
pub use esharing_telemetry::{
    http_get, Event, EventKind, EventRecord, MetricsServer, RollupSpec, SloRule, SloSignal,
    SloStatus, TelemetryConfig, TsdbConfig,
};
pub use health::HealthConfig;
pub use lifecycle::{LifecycleAction, LifecycleConfig, LifecycleError, LifecycleOps};
pub use reopt::{
    LandmarkTable, ReoptConfig, ReoptError, ReoptForecast, ReoptOutcome, ReoptStats, ReoptTrigger,
    ZoneLandmarks,
};
pub use replay::{LatencySummary, ReplayConfig, ReplayReport, RequestSink, SinkOutcome};
pub use shard_map::{Axis, ShardMap, ZoneNode};
