#!/usr/bin/env bash
# Local CI: formatting, lints, the full test suite, and a smoke experiment
# run. Mirrors what a hosted pipeline would run; fails fast on the first
# broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test --workspace -q

echo "==> property oracles: flat-grid index, incremental KS window, deferred drift"
cargo test --release -p esharing-geo --test index_equivalence -q
cargo test --release -p esharing-stats --test ks_equivalence -q
# Deferred-mode decision streams must match the reference model (verdict
# snapshotted at boundary N, committed at N+1) in both drift modes.
cargo test --release -p esharing-placement --test drift_equivalence -q

echo "==> smoke: one experiment binary end to end"
cargo run --release -p esharing-bench --bin exp_table4

# Smoke artifacts land in a temp dir (ESHARING_BENCH_DIR) so the committed
# BENCH_*.json trajectory files are never clobbered by a CI run; the run
# then fails if the emitted JSON is missing the latency telemetry rows.
BENCH_TMP="$(mktemp -d)"
trap 'rm -rf "$BENCH_TMP"' EXIT

echo "==> smoke: serving engine at 1 shard and 4 shards (+ live telemetry scrape)"
ESHARING_BENCH_DIR="$BENCH_TMP" \
  cargo run --release -p esharing-bench --bin exp_engine -- --smoke --serve --shards 1,4
for row in request_server_p50 request_server_p999 engine_s4_p90 engine_s4_p999 \
           engine_s4_shard0_p90 engine_s4_shard0_p999 \
           engine_s1_decision_p50 engine_s1_decision_p99 \
           engine_s4_decision_p50 engine_s4_decision_p99 \
           engine_s1_telemetry_on_p50 engine_s1_telemetry_off_p50 \
           engine_s4_drift_inline_decision_p50 engine_s4_drift_inline_shard_p99 \
           engine_s4_drift_inline_shard_p999 \
           engine_s4_drift_deferred_decision_p50 engine_s4_drift_deferred_shard_p99 \
           engine_s4_drift_deferred_shard_p999 \
           engine_s1_health_on_p50 engine_s1_health_off_p50 \
           health_default_breaches health_tight_breaches health_tight_dumps \
           flood_static flood_static_shed flood_elastic flood_elastic_shed \
           flood_elastic_shards flood_trend flood_trend_shed \
           flood_trend_decision_p50 flood_trend_shards; do
  grep -q "\"$row\"" "$BENCH_TMP/BENCH_engine.json" \
    || { echo "BENCH_engine.json lacks latency row $row"; exit 1; }
done

# Convoy gate on the *committed* trajectory: with re-tests deferred off the
# seat, the worst shard's p99 must sit within 10x the decision p50 (200 µs
# noise floor — one scheduler hiccup on a loaded box is not a convoy), and
# the deep tail must stay under 2 ms. The inline rows are retained as the
# measured baseline, so the convoy this PR removed stays visible.
awk -F'median_ns": ' '
  /"engine_s8_drift_deferred_decision_p50"/ { split($2, a, ","); p50  = a[1] }
  /"engine_s8_drift_deferred_shard_p99"/    { split($2, a, ","); p99  = a[1] }
  /"engine_s8_drift_deferred_shard_p999"/   { split($2, a, ","); p999 = a[1] }
  /"engine_s8_drift_inline_shard_p99"/      { split($2, a, ","); inl  = a[1] }
  END {
    if (p50 == "" || p99 == "" || p999 == "" || inl == "") {
      print "committed BENCH_engine.json lacks the s8 drift convoy rows"; exit 1
    }
    budget = 10 * p50; if (budget < 200000) budget = 200000
    if (p99 > budget) {
      printf "deferred s8 worst-shard p99 %.0f ns exceeds 10x decision p50 (budget %.0f ns)\n", p99, budget
      exit 1
    }
    if (p999 > 2000000) {
      printf "deferred s8 worst-shard p999 %.0f ns exceeds the 2 ms deep-tail bound\n", p999
      exit 1
    }
  }' BENCH_engine.json

# Trend-policy gate on the committed trajectory: the flood run with the
# lifecycle driven by health-plane trends (projected occupancy + windowed
# shed delta) must shed no more than the instantaneous-signal elastic row,
# with 5% slack — the two arms converge to the same split count and their
# shed totals differ by single requests run-to-run.
# Flood rows carry their shed counts in instance_size (median_ns is 0).
awk -F'instance_size": ' '
  /"flood_elastic_shed"/ { split($2, a, ","); elastic = a[1] }
  /"flood_trend_shed"/   { split($2, a, ","); trend   = a[1] }
  END {
    if (elastic == "" || trend == "") {
      print "committed BENCH_engine.json lacks the flood shed rows"; exit 1
    }
    if (trend + 0 > (elastic + 0) * 1.05) {
      printf "trend-driven lifecycle shed %d exceeds the committed elastic shed %d by more than 5%%\n", trend, elastic
      exit 1
    }
  }' BENCH_engine.json

# Elastic-lifecycle smokes: a shard killed mid-stream must recover from its
# checkpoint + WAL suffix and reconverge bit-identically (both decision
# paths), and a live split/merge under concurrent load must not drop a
# single in-flight request. The split-under-load *flood* (shed relief vs a
# static baseline) already ran — and self-asserted — inside the exp_engine
# smoke above; these two cover the correctness side.
echo "==> smoke: lifecycle kill-and-recover + split-under-load"
cargo test --release -p esharing-engine --test lifecycle -q \
  kill_at_random_point_reconverges_bit_identically
cargo test --release -p esharing-engine --test lifecycle -q \
  split_and_merge_drop_no_in_flight_requests
# A shard killed *between* a boundary snapshot and its verdict commit must
# restore the pending re-test from the checkpoint and reconverge
# bit-identically on both decision paths.
cargo test --release -p esharing-engine --test lifecycle -q \
  kill_between_boundary_snapshot_and_verdict_commit_reconverges

# The binary already aborts when instrumentation costs more than the budget,
# but re-derive the check from the emitted rows so a stale or hand-edited
# artifact cannot slip through: instrumented p50 may exceed the bare p50 by
# at most 5%, or by 1 µs when the absolute gap is inside clock noise.
awk -F'median_ns": ' '
  /"engine_s1_telemetry_on_p50"/  { split($2, a, ","); on  = a[1] }
  /"engine_s1_telemetry_off_p50"/ { split($2, a, ","); off = a[1] }
  END {
    if (on == "" || off == "") { print "telemetry overhead rows missing"; exit 1 }
    if (on > off * 1.05 && on - off > 1000) {
      printf "telemetry overhead p50 %.0f ns vs %.0f ns bare exceeds 5%% budget\n", on, off
      exit 1
    }
  }' "$BENCH_TMP/BENCH_engine.json"

# Same re-derivation for the health plane: with the tsdb + SLO engine +
# flight recorder fully on at default resolution, decision p50 may exceed
# the plane-off p50 by at most 5% (or 1 µs of clock noise).
awk -F'median_ns": ' '
  /"engine_s1_health_on_p50"/  { split($2, a, ","); on  = a[1] }
  /"engine_s1_health_off_p50"/ { split($2, a, ","); off = a[1] }
  END {
    if (on == "" || off == "") { print "health overhead rows missing"; exit 1 }
    if (on > off * 1.05 && on - off > 1000) {
      printf "health-plane overhead p50 %.0f ns vs %.0f ns bare exceeds 5%% budget\n", on, off
      exit 1
    }
  }' "$BENCH_TMP/BENCH_engine.json"

# The mailbox lane stays behind --mailbox-fallback as the measured baseline
# and as the reference implementation for the equivalence suite; make sure
# it still serves end to end and emits the same decision-latency rows.
echo "==> smoke: mailbox fallback lane (--mailbox-fallback)"
BENCH_TMP_MB="$BENCH_TMP/mailbox"
mkdir -p "$BENCH_TMP_MB"
ESHARING_BENCH_DIR="$BENCH_TMP_MB" \
  cargo run --release -p esharing-bench --bin exp_engine -- --smoke --mailbox-fallback --shards 1
for row in engine_s1_p50 engine_s1_decision_p50; do
  grep -q "\"$row\"" "$BENCH_TMP_MB/BENCH_engine.json" \
    || { echo "mailbox-fallback BENCH_engine.json lacks latency row $row"; exit 1; }
done

# The inline-drift fallback (Algorithm 2 exactly as written, re-test under
# the seat) stays reachable behind --inline-drift; make sure it serves end
# to end and still emits the convoy-comparison rows.
echo "==> smoke: inline-drift fallback lane (--inline-drift)"
BENCH_TMP_ID="$BENCH_TMP/inline-drift"
mkdir -p "$BENCH_TMP_ID"
ESHARING_BENCH_DIR="$BENCH_TMP_ID" \
  cargo run --release -p esharing-bench --bin exp_engine -- --smoke --inline-drift --shards 1,4
for row in engine_s4_p50 engine_s4_decision_p50 engine_s4_drift_deferred_shard_p99; do
  grep -q "\"$row\"" "$BENCH_TMP_ID/BENCH_engine.json" \
    || { echo "inline-drift BENCH_engine.json lacks latency row $row"; exit 1; }
done

# The epochal re-optimization loop end to end: the --reopt smoke drives the
# warm-start solver bench (the binary aborts unless the warm re-solve is at
# least 5x the cold solve), the weekday→weekend drift-shift replay (aborts
# unless the flip commits a hot-swap, journals a typed EpochSwapped event,
# and exports the reopt metric families on a live /metrics scrape), and the
# swap-window decision-latency A/B (aborts unless the worker-side p99 with
# live hot-swaps stays within 5% or 1 µs of the loop-off arm).
echo "==> smoke: epochal re-optimization loop (--reopt)"
BENCH_TMP_RO="$BENCH_TMP/reopt"
mkdir -p "$BENCH_TMP_RO"
ESHARING_BENCH_DIR="$BENCH_TMP_RO" \
  cargo run --release -p esharing-bench --bin exp_engine -- --smoke --reopt --shards 1
for row in reopt_cold_ms reopt_warm_ms reopt_shift_on_walk_m reopt_shift_off_walk_m \
           reopt_epoch_swaps reopt_swap_p99_on reopt_swap_p99_off; do
  grep -q "\"$row\"" "$BENCH_TMP_RO/BENCH_engine.json" \
    || { echo "reopt BENCH_engine.json lacks row $row"; exit 1; }
done

# Warm-start gate on the *committed* trajectory: a stale or hand-edited
# artifact must not hide a regression the binary would have caught — the
# committed cold/warm rows must hold the 5x ratio, and the committed
# swap-window p99 pair must hold the 5%-or-1-µs pause-free budget.
awk -F'median_ns": ' '
  /"reopt_cold_ms"/     { split($2, a, ","); cold = a[1] }
  /"reopt_warm_ms"/     { split($2, a, ","); warm = a[1] }
  /"reopt_swap_p99_on"/  { split($2, a, ","); on   = a[1] }
  /"reopt_swap_p99_off"/ { split($2, a, ","); off  = a[1] }
  END {
    if (cold == "" || warm == "" || on == "" || off == "") {
      print "committed BENCH_engine.json lacks the reopt rows"; exit 1
    }
    if (warm + 0 <= 0 || cold / warm < 5.0) {
      printf "committed warm re-solve ratio %.2fx is below the 5x floor\n", cold / warm
      exit 1
    }
    if (on > off * 1.05 && on - off > 1000) {
      printf "committed swap-window p99 %.0f ns vs %.0f ns loop-off exceeds 5%% budget\n", on, off
      exit 1
    }
  }' BENCH_engine.json

# The --serve run scraped its own /metrics mid-run; the payload must carry
# the decision, shed and KS-drift metric families end to end.
for family in esharing_decisions_total esharing_sheds_total \
              esharing_ks_d_statistic esharing_decision_stage_ns \
              esharing_pending_downstream \
              esharing_shards_active esharing_lifecycle_ops_total \
              esharing_drift_pending ks_retest_deferred \
              esharing_ks_verdicts_committed_total; do
  grep -q "$family" "$BENCH_TMP/telemetry_scrape.prom" \
    || { echo "telemetry scrape lacks metric family $family"; exit 1; }
done

# Health-plane smoke: the exp_engine run above drove two SLO arms. The
# default-SLO arm must have ended green (zero breaches in its emitted
# row), and the intentionally tight SLO (decision p99 < 1 ns) must have
# breached, journalled, frozen a flight dump, and exposed the burn-rate
# family on its self-scrape.
echo "==> smoke: fleet health plane (SLO burn rates + flight recorder)"
grep -q '"health_default_breaches", "instance_size": 0,' "$BENCH_TMP/BENCH_engine.json" \
  || { echo "default-SLO smoke run did not end with zero breaches"; exit 1; }
for family in esharing_slo_burn esharing_slo_breaches_total; do
  grep -q "$family" "$BENCH_TMP/health_scrape.prom" \
    || { echo "health scrape lacks metric family $family"; exit 1; }
done
# The bounded journal must not have dropped a single event in either
# smoke scrape (plain telemetry run and breached health run).
for scrape in telemetry_scrape.prom health_scrape.prom; do
  grep -q '^esharing_journal_dropped_total 0$' "$BENCH_TMP/$scrape" \
    || { echo "$scrape reports dropped journal events (or lacks the family)"; exit 1; }
done
# A flight-recorder dump file must exist on disk and parse: non-empty,
# a JSON object with balanced braces carrying the trigger and the
# breaching window's samples.
dump="$(ls "$BENCH_TMP"/flight/flight-*.json 2>/dev/null | head -1)"
[ -n "$dump" ] && [ -s "$dump" ] \
  || { echo "no flight-recorder dump file under $BENCH_TMP/flight"; exit 1; }
grep -q '"trigger": "slo_breach:' "$dump" \
  || { echo "flight dump $dump lacks the slo_breach trigger"; exit 1; }
grep -q '"samples"' "$dump" \
  || { echo "flight dump $dump lacks the samples section"; exit 1; }
awk '{ for (i = 1; i <= length($0); i++) { c = substr($0, i, 1)
         if (c == "{") open++; else if (c == "}") close_++ } }
     END { if (open == 0 || open != close_) {
             printf "flight dump braces unbalanced (%d open / %d close)\n", open, close_
             exit 1 } }' "$dump"

echo "==> smoke: decision-latency bench (one timed iteration)"
ESHARING_BENCH_DIR="$BENCH_TMP" ESHARING_BENCH_SMOKE=1 \
  cargo bench -p esharing-bench --bench placement
for row in deviation_handle deviation_handle_reference_index; do
  grep -q "\"$row\"" "$BENCH_TMP/BENCH_placement.json" \
    || { echo "BENCH_placement.json lacks latency row $row"; exit 1; }
done

echo "CI OK"
