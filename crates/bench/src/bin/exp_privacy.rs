//! Privacy extension experiment: the placement cost of location
//! obfuscation.
//!
//! §II-B suggests "obfuscation with location-wise differential privacy"
//! as an add-on security feature. This experiment quantifies its price:
//! destinations are reported through the planar Laplace mechanism at
//! several privacy levels ε, the online algorithm decides on the *noisy*
//! locations, and the user pays the *true* walking distance to the
//! assigned parking. The gap to the non-private run is the cost of
//! privacy.

use esharing_bench::Table;
use esharing_geo::privacy::PlanarLaplace;
use esharing_geo::Point;
use esharing_placement::offline::jms_greedy;
use esharing_placement::online::{DeviationConfig, DeviationPenalty, OnlinePlacement};
use esharing_placement::PlpInstance;
use esharing_stats::RunningStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPACE: f64 = 5_000.0;
const TRIALS: u64 = 20;

fn uniform(n: usize, side: f64, rng: &mut StdRng) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

/// One run: stream requests (optionally obfuscated) and account the true
/// walking cost of each decision.
fn run(epsilon: Option<f64>, seed: u64) -> (f64, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let history = uniform(150, 1_000.0, &mut rng);
    let inst = PlpInstance::with_uniform_cost(history.clone(), SPACE);
    let landmarks = jms_greedy(&inst).facility_points(&inst);
    let mut alg = DeviationPenalty::new(
        landmarks,
        history,
        DeviationConfig {
            space_cost: SPACE,
            seed,
            ..DeviationConfig::default()
        },
    );
    let mechanism = epsilon.map(|e| PlanarLaplace::new(e).expect("valid epsilon"));
    let mut true_walking = 0.0;
    for true_dest in uniform(250, 1_000.0, &mut rng) {
        let reported = match &mechanism {
            Some(m) => m.obfuscate(true_dest, &mut rng),
            None => true_dest,
        };
        let decision = alg.handle(reported);
        // The user walks from their true destination to whatever station
        // the (possibly noisy) request was routed to.
        true_walking += true_dest.distance(decision.station());
    }
    let space = alg.cost().space;
    (true_walking + space, alg.stations().len())
}

fn main() {
    println!(
        "Privacy extension — placement cost under ε-geo-indistinguishable destinations\n\
         ({TRIALS} trials x 250 requests; true-walking + space accounting)\n"
    );
    let mut t = Table::new(vec![
        "epsilon".into(),
        "mean noise (m)".into(),
        "total cost (mean)".into(),
        "stations (mean)".into(),
        "overhead vs exact".into(),
    ]);
    let mut baseline = RunningStats::new();
    for seed in 0..TRIALS {
        baseline.push(run(None, 42 + seed).0);
    }
    t.row(vec![
        "exact".into(),
        "0".into(),
        format!("{:.0}", baseline.mean()),
        "-".into(),
        "0%".into(),
    ]);
    for epsilon in [0.1, 0.02, 0.01, 0.005] {
        let mut total = RunningStats::new();
        let mut stations = RunningStats::new();
        for seed in 0..TRIALS {
            let (cost, n) = run(Some(epsilon), 42 + seed);
            total.push(cost);
            stations.push(n as f64);
        }
        t.row(vec![
            format!("{epsilon}"),
            format!("{:.0}", 2.0 / epsilon),
            format!("{:.0}", total.mean()),
            format!("{:.1}", stations.mean()),
            format!(
                "{:+.1}%",
                100.0 * (total.mean() - baseline.mean()) / baseline.mean()
            ),
        ]);
    }
    println!("{t}");
    println!(
        "reading: noise well below the station spacing (ε ≥ 0.02, ≤100 m) costs little;\n\
         doorstep-hiding noise at the spacing scale (ε = 0.005, 400 m) degrades routing."
    );
}
