//! Moving-average baseline.
//!
//! Table II evaluates MA with window sizes `wz = 1..5`. The forecast for
//! the next step is the mean of the last `wz` observations; multi-step
//! forecasts recurse on the model's own predictions, matching the standard
//! iterated-MA evaluation.

use crate::series::validate;
use crate::{ForecastError, Forecaster};

/// Moving-average forecaster with a fixed window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MovingAverage {
    window: usize,
    fitted: bool,
}

impl MovingAverage {
    /// Creates an MA forecaster with the given window size.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] for a zero window.
    pub fn new(window: usize) -> Result<Self, ForecastError> {
        if window == 0 {
            return Err(ForecastError::InvalidParameter {
                name: "window",
                reason: "must be at least 1",
            });
        }
        Ok(MovingAverage {
            window,
            fitted: false,
        })
    }

    /// The window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Forecaster for MovingAverage {
    fn fit(&mut self, series: &[f64]) -> Result<(), ForecastError> {
        validate(series)?;
        if series.len() < self.window {
            return Err(ForecastError::SeriesTooShort {
                needed: self.window,
                got: series.len(),
            });
        }
        // MA has no parameters; fitting only validates compatibility.
        self.fitted = true;
        Ok(())
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        validate(history)?;
        if history.len() < self.window {
            return Err(ForecastError::SeriesTooShort {
                needed: self.window,
                got: history.len(),
            });
        }
        let mut buffer: Vec<f64> = history[history.len() - self.window..].to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mean = buffer.iter().sum::<f64>() / self.window as f64;
            out.push(mean);
            buffer.remove(0);
            buffer.push(mean);
        }
        Ok(out)
    }

    fn name(&self) -> String {
        format!("MA(wz={})", self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_window() {
        assert!(MovingAverage::new(0).is_err());
    }

    #[test]
    fn must_fit_before_forecast() {
        let ma = MovingAverage::new(2).unwrap();
        assert_eq!(ma.forecast(&[1.0, 2.0], 1), Err(ForecastError::NotFitted));
    }

    #[test]
    fn window_one_repeats_last() {
        let mut ma = MovingAverage::new(1).unwrap();
        ma.fit(&[5.0, 7.0]).unwrap();
        assert_eq!(ma.forecast(&[5.0, 7.0], 3).unwrap(), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn one_step_is_window_mean() {
        let mut ma = MovingAverage::new(3).unwrap();
        let h = [1.0, 2.0, 3.0, 4.0, 5.0];
        ma.fit(&h).unwrap();
        let f = ma.forecast(&h, 1).unwrap();
        assert_eq!(f, vec![4.0]); // mean of 3,4,5
    }

    #[test]
    fn multi_step_recurses() {
        let mut ma = MovingAverage::new(2).unwrap();
        let h = [2.0, 4.0];
        ma.fit(&h).unwrap();
        let f = ma.forecast(&h, 3).unwrap();
        // step1: (2+4)/2=3; step2: (4+3)/2=3.5; step3: (3+3.5)/2=3.25
        assert_eq!(f, vec![3.0, 3.5, 3.25]);
    }

    #[test]
    fn constant_series_stays_constant() {
        let mut ma = MovingAverage::new(4).unwrap();
        let h = [6.0; 10];
        ma.fit(&h).unwrap();
        assert!(ma
            .forecast(&h, 5)
            .unwrap()
            .iter()
            .all(|&v| (v - 6.0).abs() < 1e-12));
    }

    #[test]
    fn short_history_rejected() {
        let mut ma = MovingAverage::new(5).unwrap();
        ma.fit(&[1.0; 10]).unwrap();
        assert!(matches!(
            ma.forecast(&[1.0, 2.0], 1),
            Err(ForecastError::SeriesTooShort { needed: 5, got: 2 })
        ));
    }

    #[test]
    fn name_mentions_window() {
        assert_eq!(MovingAverage::new(3).unwrap().name(), "MA(wz=3)");
    }
}
