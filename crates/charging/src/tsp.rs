//! The operator's touring problem.
//!
//! "The operator traverses through all the demand sites with the shortest
//! route by solving the Traveling Salesman Problem" (§V-E). Tours here are
//! open paths starting at a depot (the operator's base) and visiting every
//! demand site once. Three solvers are provided:
//!
//! * [`nearest_neighbor`] — the fast constructive heuristic,
//! * [`two_opt`] — local-search improvement over any tour,
//! * [`held_karp`] — exact dynamic programming for ≤ [`HELD_KARP_MAX`]
//!   stops, used to validate the heuristics and for small tours.

use esharing_geo::Point;

/// Maximum number of stops (excluding the depot) accepted by [`held_karp`].
pub const HELD_KARP_MAX: usize = 15;

/// Length of the open tour `depot → stops[order[0]] → stops[order[1]] → …`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..stops.len()`.
pub fn route_length(depot: Point, stops: &[Point], order: &[usize]) -> f64 {
    assert_eq!(order.len(), stops.len(), "order must cover all stops");
    let mut seen = vec![false; stops.len()];
    let mut length = 0.0;
    let mut at = depot;
    for &idx in order {
        assert!(!seen[idx], "order visits stop {idx} twice");
        seen[idx] = true;
        length += at.distance(stops[idx]);
        at = stops[idx];
    }
    length
}

/// Nearest-neighbour construction: repeatedly visit the closest unvisited
/// stop. Returns the visiting order.
pub fn nearest_neighbor(depot: Point, stops: &[Point]) -> Vec<usize> {
    let n = stops.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut at = depot;
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !visited[i])
            .min_by(|&a, &b| {
                at.distance(stops[a])
                    .partial_cmp(&at.distance(stops[b]))
                    .expect("finite distances")
            })
            .expect("unvisited stop remains");
        visited[next] = true;
        at = stops[next];
        order.push(next);
    }
    order
}

/// 2-opt local search: repeatedly reverses tour segments while that
/// shortens the route, starting from `initial`. Returns the improved order.
///
/// # Panics
///
/// Panics if `initial` is not a permutation of `0..stops.len()`.
pub fn two_opt(depot: Point, stops: &[Point], initial: &[usize]) -> Vec<usize> {
    let mut order = initial.to_vec();
    let n = order.len();
    if n < 3 {
        let _ = route_length(depot, stops, &order); // validates permutation
        return order;
    }
    let pos = |order: &[usize], i: isize| -> Point {
        if i < 0 {
            depot
        } else {
            stops[order[i as usize]]
        }
    };
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n - 1 {
            for j in i + 1..n {
                // Reversing order[i..=j] replaces edges (i-1, i) and
                // (j, j+1) with (i-1, j) and (i, j+1); for an open tour the
                // (j, j+1) edge vanishes when j is last.
                let a = pos(&order, i as isize - 1);
                let b = pos(&order, i as isize);
                let c = pos(&order, j as isize);
                let before = a.distance(b);
                let after = a.distance(c);
                let (before, after) = if j + 1 < n {
                    let d = pos(&order, j as isize + 1);
                    (before + c.distance(d), after + b.distance(d))
                } else {
                    (before, after)
                };
                if after + 1e-9 < before {
                    order[i..=j].reverse();
                    improved = true;
                }
            }
        }
    }
    order
}

/// Exact shortest open tour by Held–Karp dynamic programming.
///
/// # Panics
///
/// Panics if `stops.len() > HELD_KARP_MAX` (the DP is `O(n² 2ⁿ)`).
pub fn held_karp(depot: Point, stops: &[Point]) -> Vec<usize> {
    let n = stops.len();
    assert!(
        n <= HELD_KARP_MAX,
        "held_karp supports at most {HELD_KARP_MAX} stops, got {n}"
    );
    if n == 0 {
        return Vec::new();
    }
    let full = (1usize << n) - 1;
    // dp[mask][last] = shortest path from depot through `mask` ending at
    // `last`.
    let mut dp = vec![vec![f64::INFINITY; n]; 1 << n];
    let mut parent = vec![vec![usize::MAX; n]; 1 << n];
    for last in 0..n {
        dp[1 << last][last] = depot.distance(stops[last]);
    }
    for mask in 1..=full {
        for last in 0..n {
            if mask & (1 << last) == 0 || dp[mask][last].is_infinite() {
                continue;
            }
            let base = dp[mask][last];
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let cand = base + stops[last].distance(stops[next]);
                let m2 = mask | (1 << next);
                if cand < dp[m2][next] {
                    dp[m2][next] = cand;
                    parent[m2][next] = last;
                }
            }
        }
    }
    let mut last = (0..n)
        .min_by(|&a, &b| dp[full][a].partial_cmp(&dp[full][b]).expect("finite"))
        .expect("non-empty");
    let mut order = vec![last];
    let mut mask = full;
    while parent[mask][last] != usize::MAX {
        let prev = parent[mask][last];
        mask &= !(1 << last);
        last = prev;
        order.push(last);
    }
    order.reverse();
    order
}

/// Convenience: the best tour this module can produce — exact for small
/// inputs, otherwise nearest-neighbour improved by 2-opt.
pub fn solve(depot: Point, stops: &[Point]) -> Vec<usize> {
    if stops.len() <= HELD_KARP_MAX {
        held_karp(depot, stops)
    } else {
        two_opt(depot, stops, &nearest_neighbor(depot, stops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_stops(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let depot = Point::ORIGIN;
        assert!(nearest_neighbor(depot, &[]).is_empty());
        assert!(held_karp(depot, &[]).is_empty());
        let one = [Point::new(3.0, 4.0)];
        assert_eq!(nearest_neighbor(depot, &one), vec![0]);
        assert_eq!(held_karp(depot, &one), vec![0]);
        assert_eq!(route_length(depot, &one, &[0]), 5.0);
    }

    #[test]
    fn route_length_known() {
        let depot = Point::ORIGIN;
        let stops = [Point::new(10.0, 0.0), Point::new(10.0, 10.0)];
        assert_eq!(route_length(depot, &stops, &[0, 1]), 20.0);
        assert!((route_length(depot, &stops, &[1, 0]) - (200f64.sqrt() + 10.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn route_length_rejects_duplicates() {
        let stops = [Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let _ = route_length(Point::ORIGIN, &stops, &[0, 0]);
    }

    #[test]
    fn nearest_neighbor_on_a_line_is_optimal() {
        let depot = Point::ORIGIN;
        let stops: Vec<Point> = (1..=5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let order = nearest_neighbor(depot, &stops);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(route_length(depot, &stops, &order), 50.0);
    }

    #[test]
    fn held_karp_beats_or_ties_heuristics() {
        for seed in 0..6 {
            let stops = random_stops(9, seed);
            let depot = Point::new(500.0, 500.0);
            let exact = route_length(depot, &stops, &held_karp(depot, &stops));
            let nn_order = nearest_neighbor(depot, &stops);
            let nn = route_length(depot, &stops, &nn_order);
            let improved = route_length(depot, &stops, &two_opt(depot, &stops, &nn_order));
            assert!(exact <= nn + 1e-9, "seed {seed}: exact {exact} vs nn {nn}");
            assert!(
                exact <= improved + 1e-9,
                "seed {seed}: exact {exact} vs 2opt {improved}"
            );
            assert!(improved <= nn + 1e-9);
        }
    }

    #[test]
    fn two_opt_never_worsens() {
        for seed in 10..16 {
            let stops = random_stops(25, seed);
            let depot = Point::ORIGIN;
            let nn_order = nearest_neighbor(depot, &stops);
            let nn = route_length(depot, &stops, &nn_order);
            let improved = route_length(depot, &stops, &two_opt(depot, &stops, &nn_order));
            assert!(improved <= nn + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn two_opt_untangles_crossing() {
        // A deliberately crossed square tour.
        let depot = Point::ORIGIN;
        let stops = [
            Point::new(0.0, 10.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 20.0),
        ];
        let crossed = vec![1, 3, 2, 0];
        let improved = two_opt(depot, &stops, &crossed);
        assert!(route_length(depot, &stops, &improved) < route_length(depot, &stops, &crossed));
    }

    #[test]
    fn solve_dispatches_by_size() {
        let depot = Point::ORIGIN;
        let small = random_stops(8, 1);
        let small_order = solve(depot, &small);
        assert_eq!(small_order.len(), 8);
        let large = random_stops(30, 2);
        let large_order = solve(depot, &large);
        assert_eq!(large_order.len(), 30);
        // Both are valid permutations (route_length validates).
        let _ = route_length(depot, &small, &small_order);
        let _ = route_length(depot, &large, &large_order);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn held_karp_rejects_large() {
        let _ = held_karp(Point::ORIGIN, &random_stops(16, 3));
    }
}
