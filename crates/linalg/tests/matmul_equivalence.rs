//! Property-based equivalence for the blocked/fused linear-algebra
//! kernels against their straightforward reference loops.
//!
//! The blocked `matmul` accumulates each output entry in ascending-`k`
//! order — the same order as the reference triple loop — so products are
//! bit-identical, not merely close; the ISSUE's 1e-9 bound is satisfied
//! with exact equality. `matmul_transposed` reassociates the reduction, so
//! it gets a small tolerance instead.

use esharing_linalg::vecops;
use esharing_linalg::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix from a seed (SplitMix64-style), so
/// properties range over shapes and seeds without generating O(n²) values
/// through the strategy layer.
fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

proptest! {
    #[test]
    fn blocked_matmul_matches_reference(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..1 << 32,
    ) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed ^ 0x9e37_79b9);
        prop_assert_eq!(a.matmul(&b), a.matmul_reference(&b));
    }

    #[test]
    fn blocked_matmul_matches_reference_past_block_boundary(
        seed in 0u64..1 << 32,
    ) {
        // Shapes straddling the 64-wide block in every dimension.
        let a = seeded_matrix(65, 130, seed);
        let b = seeded_matrix(130, 67, seed ^ 0x517c_c1b7);
        prop_assert_eq!(a.matmul(&b), a.matmul_reference(&b));
    }

    #[test]
    fn matmul_transposed_matches_reference(
        m in 1usize..32,
        k in 1usize..32,
        n in 1usize..32,
        seed in 0u64..1 << 32,
    ) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(n, k, seed ^ 0x2545_f491);
        let bt = Matrix::from_fn(k, n, |r, c| b.get(c, r));
        let fast = a.matmul_transposed(&b);
        let reference = a.matmul_reference(&bt);
        for r in 0..m {
            for c in 0..n {
                prop_assert!(
                    (fast.get(r, c) - reference.get(r, c)).abs() <= 1e-9,
                    "({r},{c}): {} vs {}", fast.get(r, c), reference.get(r, c),
                );
            }
        }
    }

    #[test]
    fn gate_matvec_matches_unfused_sequence(
        rows in 1usize..24,
        xcols in 1usize..24,
        hcols in 1usize..24,
        seed in 0u64..1 << 32,
    ) {
        let w = seeded_matrix(rows, xcols, seed);
        let u = seeded_matrix(rows, hcols, seed ^ 0x94d0_49bb);
        let x: Vec<f64> = (0..xcols).map(|i| (i as f64).sin()).collect();
        let h: Vec<f64> = (0..hcols).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..rows).map(|i| i as f64 * 0.25 - 1.0).collect();
        // The fused kernel must reproduce the matvec + add sequence it
        // replaced in the LSTM step, bit for bit.
        let mut expected = vecops::add(&w.matvec(&x), &u.matvec(&h));
        vecops::add_assign(&mut expected, &b);
        prop_assert_eq!(w.gate_matvec(&x, &u, &h, &b), expected);
    }
}
