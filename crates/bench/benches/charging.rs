//! Criterion benches for Tier 2: TSP solvers and the incentive pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esharing_charging::{tsp, ChargingCostParams, IncentiveMechanism, StationEnergy, UserModel};
use esharing_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn stops(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..3_000.0), rng.gen_range(0.0..3_000.0)))
        .collect()
}

fn bench_tsp(c: &mut Criterion) {
    let depot = Point::ORIGIN;
    let mut group = c.benchmark_group("tsp");
    for n in [8usize, 12] {
        let pts = stops(n, 1);
        group.bench_with_input(BenchmarkId::new("held_karp", n), &n, |b, _| {
            b.iter(|| black_box(tsp::held_karp(depot, &pts)));
        });
    }
    for n in [25usize, 50, 100] {
        let pts = stops(n, 2);
        group.bench_with_input(BenchmarkId::new("nn_plus_2opt", n), &n, |b, _| {
            b.iter(|| {
                let order = tsp::nearest_neighbor(depot, &pts);
                black_box(tsp::two_opt(depot, &pts, &order))
            });
        });
    }
    group.finish();
}

fn bench_incentives(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let stations: Vec<StationEnergy> = (0..40)
        .map(|_| StationEnergy {
            location: Point::new(rng.gen_range(0.0..3_000.0), rng.gen_range(0.0..3_000.0)),
            low_bikes: rng.gen_range(0..25),
            arrivals: 100,
        })
        .collect();
    let mechanism =
        IncentiveMechanism::new(ChargingCostParams::default(), UserModel::default(), 0.4, 9);
    c.bench_function("incentive_period_40_stations", |b| {
        b.iter(|| black_box(mechanism.run_period(&stations)));
    });
}

criterion_group!(benches, bench_tsp, bench_incentives);
criterion_main!(benches);
