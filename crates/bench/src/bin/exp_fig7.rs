//! Fig. 7 — Cost-saving ratios by applying incentives (Eq. 11):
//! (a) change of the saving ratio with m and n, (b) change with q and d
//! for different m.

use esharing_bench::Table;
use esharing_charging::ChargingCostParams;

fn main() {
    println!("Fig. 7 — savings ratio (C - C*) / C of aggregating n stations into m\n");

    // (a) sweep m for several n, with the paper's d=5 and a mid q.
    let params = ChargingCostParams::new(60.0, 5.0, 2.0);
    let mut a = Table::new(vec![
        "m/n".into(),
        "n=10".into(),
        "n=20".into(),
        "n=30".into(),
        "n=40".into(),
    ]);
    for step in 1..=10 {
        let frac = step as f64 / 10.0;
        let mut row = vec![format!("{frac:.1}")];
        for n in [10usize, 20, 30, 40] {
            let m = ((n as f64) * frac).round() as usize;
            row.push(format!("{:.3}", params.savings_ratio(n, m)));
        }
        a.row(row);
    }
    println!("(a) saving vs m/n (q=60, d=5):\n{a}");
    println!(
        "check: m/n = 0.65 at n=20 saves {:.0}% (paper: ~50% for delay-heavy settings)\n",
        100.0 * ChargingCostParams::new(10.0, 5.0, 2.0).savings_ratio(20, 13)
    );

    // (b) sweep q and d for fixed n and several m.
    let n = 20usize;
    let mut b = Table::new(vec![
        "q".into(),
        "d".into(),
        "m=5".into(),
        "m=10".into(),
        "m=15".into(),
    ]);
    for q in [5.0, 20.0, 60.0, 120.0] {
        for d in [0.5, 2.0, 5.0, 10.0] {
            let p = ChargingCostParams::new(q, d, 2.0);
            b.row(vec![
                format!("{q:.0}"),
                format!("{d:.1}"),
                format!("{:.3}", p.savings_ratio(n, 5)),
                format!("{:.3}", p.savings_ratio(n, 10)),
                format!("{:.3}", p.savings_ratio(n, 15)),
            ]);
        }
    }
    println!("(b) saving vs (q, d) at n={n}:\n{b}");
    println!("shape checks: saving rises steeply in d from small values, and slowly as q grows (paper §IV-B).");
}
