//! Elastic-lifecycle integration tests: kill-at-a-random-point failover
//! reconverging bit-identically with an unkilled run (both decision
//! paths), live split/merge under concurrent load without dropping a
//! single in-flight request, degraded service from dead shards, and the
//! WAL-gap refusal that keeps recovery honest when the bounded journal
//! outran its checkpoint.

use esharing_core::{ESharing, LatencyHistogram, SystemConfig};
use esharing_engine::{
    Admission, DecisionPath, Engine, EngineConfig, EngineDecision, LifecycleConfig, LifecycleError,
    Partition, ShardCheckpoint, TelemetryConfig,
};
use esharing_geo::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Four tight demand clusters in a 2 km field — the same fixture the
/// engine unit tests partition.
fn clustered_history() -> Vec<Point> {
    let centers = [
        Point::new(300.0, 300.0),
        Point::new(1700.0, 300.0),
        Point::new(300.0, 1700.0),
        Point::new(1700.0, 1700.0),
    ];
    let mut out = Vec::new();
    for i in 0..400 {
        let c = centers[i % 4];
        let jitter = Point::new(((i * 37) % 100) as f64, ((i * 53) % 100) as f64);
        out.push(c + jitter);
    }
    out
}

/// A deterministic request stream spread over the whole field.
fn request_stream(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(((i * 97) % 2000) as f64, ((i * 31) % 2000) as f64))
        .collect()
}

fn lifecycle_config(path: DecisionPath) -> EngineConfig {
    EngineConfig {
        shards: 2,
        partition: Partition::UniformGrid,
        decision_path: path,
        // Failover equivalence is about decision state, not telemetry:
        // run with telemetry off so the comparison is pure algorithm.
        telemetry: TelemetryConfig::disabled(),
        lifecycle: LifecycleConfig {
            enabled: true,
            ..LifecycleConfig::default()
        },
        ..EngineConfig::default()
    }
}

/// The tentpole acceptance test: checkpoint at a random point, kill at a
/// random later point, recover by checkpoint restore + WAL-suffix replay,
/// keep serving — and the decision stream plus every shard's final state
/// must be bit-identical to a run that was never killed. Both decision
/// paths.
#[test]
fn kill_at_random_point_reconverges_bit_identically() {
    let history = clustered_history();
    let stream = request_stream(600);
    for path in [DecisionPath::SyncShared, DecisionPath::Mailbox] {
        let reference = Engine::start(&history, lifecycle_config(path));
        let map = reference.map();
        let reference_decisions: Vec<EngineDecision> = stream
            .iter()
            .map(|&p| reference.submit(p).unwrap())
            .collect();
        let reference_systems = reference.shutdown();

        let mut rng = StdRng::seed_from_u64(0xE5A1);
        for trial in 0..4 {
            let engine = Engine::start(&history, lifecycle_config(path));
            let kill_at = rng.gen_range(1..stream.len());
            // Trial 0 relies on the *initial* checkpoint taken at engine
            // start (replaying the full WAL); later trials checkpoint at
            // a random point at or before the kill.
            let ckpt_at = (trial > 0).then(|| rng.gen_range(0..=kill_at));
            let victim = rng.gen_range(0..engine.shard_count());
            let mut replayed = None;
            let mut decisions = Vec::with_capacity(stream.len());
            for (i, &p) in stream.iter().enumerate() {
                if ckpt_at == Some(i) {
                    engine.checkpoint_shard(victim).unwrap();
                }
                if i == kill_at {
                    engine.kill_shard(victim).unwrap();
                    replayed = Some(engine.recover_shard(victim).unwrap());
                }
                decisions.push(engine.submit(p).unwrap());
            }
            assert_eq!(
                decisions, reference_decisions,
                "{path:?} trial {trial}: decision stream diverged after failover"
            );
            // The replay suffix is exactly the victim's admits since the
            // covering checkpoint.
            let since = ckpt_at.unwrap_or(0);
            let expected: u64 = stream[since..kill_at]
                .iter()
                .filter(|&&p| map.shard_of(p) == victim)
                .count() as u64;
            assert_eq!(replayed, Some(expected), "{path:?} trial {trial}");
            let systems = engine.shutdown();
            assert_eq!(systems.len(), reference_systems.len());
            for (shard, (sys, reference_sys)) in systems.iter().zip(&reference_systems).enumerate()
            {
                assert_eq!(
                    sys.stations(),
                    reference_sys.stations(),
                    "{path:?} trial {trial} shard {shard}: stations diverged"
                );
                assert_eq!(
                    sys.metrics(),
                    reference_sys.metrics(),
                    "{path:?} trial {trial} shard {shard}: metrics diverged"
                );
                assert_eq!(
                    sys.last_similarity(),
                    reference_sys.last_similarity(),
                    "{path:?} trial {trial} shard {shard}: drift state diverged"
                );
            }
        }
    }
}

/// Live split and merge under concurrent client load: every submitted
/// request must come back `Served` — no drops, no `Degraded`, no
/// `EngineClosed` — and the fleet's served count must equal exactly what
/// the clients got back. This is the in-flight equivalence guarantee of
/// the moved-seat commit protocol.
#[test]
fn split_and_merge_drop_no_in_flight_requests() {
    let engine = Arc::new(Engine::start(
        &clustered_history(),
        EngineConfig {
            shards: 1,
            partition: Partition::UniformGrid,
            decision_path: DecisionPath::SyncShared,
            // Large enough that admission control never sheds: any
            // Degraded outcome below is a dropped in-flight request.
            queue_capacity: 1 << 16,
            telemetry: TelemetryConfig::disabled(),
            lifecycle: LifecycleConfig {
                enabled: true,
                max_shards: 8,
                ..LifecycleConfig::default()
            },
            ..EngineConfig::default()
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4u64)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                let mut served = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let p = Point::new(
                        ((t * 131 + i * 97) % 2000) as f64,
                        ((t * 57 + i * 31) % 2000) as f64,
                    );
                    match engine.submit(p) {
                        Ok(EngineDecision::Served { .. }) => served += 1,
                        Ok(EngineDecision::Degraded { shard, .. }) => {
                            panic!("request shed during lifecycle churn (shard {shard})")
                        }
                        Err(e) => panic!("engine closed mid-run: {e}"),
                    }
                    i += 1;
                }
                served
            })
        })
        .collect();
    // Structural churn while the clients hammer: grow to several shards,
    // then merge all the way back down.
    let mut splits = 0;
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(40));
        match engine.split_shard(0) {
            Ok(_) => splits += 1,
            Err(LifecycleError::DegenerateSplit) => {}
            Err(e) => panic!("split failed: {e}"),
        }
    }
    assert!(splits >= 1, "demand spread over 2 km must be splittable");
    std::thread::sleep(Duration::from_millis(40));
    while engine.shard_count() > 1 {
        engine.merge_shards(0, 1).unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(40));
    stop.store(true, Ordering::Release);
    let client_served: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(engine.shard_count(), 1);
    assert_eq!(engine.shed_total(), 0, "nothing may shed at this capacity");
    let snap = engine.snapshot().unwrap();
    assert_eq!(
        snap.metrics.requests_served, client_served,
        "every decision handed to a client must be reflected in fleet state"
    );
    assert_eq!(snap.shards_active, 1);
    let ops = engine.lifecycle_ops();
    assert_eq!(ops.splits, splits as u64);
    assert!(ops.merges >= 1);
}

/// A killed shard keeps its zone *serving*: submits come back `Degraded`
/// (offline-landmark fallbacks), probes and snapshots stay clean, and
/// recovery brings the zone back to full service.
#[test]
fn dead_shard_degrades_and_recovers_cleanly() {
    let engine = Engine::start(
        &clustered_history(),
        lifecycle_config(DecisionPath::SyncShared),
    );
    let stream = request_stream(100);
    for &p in &stream {
        engine.submit(p).unwrap();
    }
    let victim = 0usize;
    let zone_point = clustered_history()
        .into_iter()
        .find(|&p| engine.map().shard_of(p) == victim)
        .expect("zone 0 holds history");
    engine.kill_shard(victim).unwrap();
    // Double-kill and mismatched recovery targets refuse cleanly.
    assert_eq!(engine.kill_shard(victim), Err(LifecycleError::ShardDead));
    assert_eq!(
        engine.checkpoint_shard(victim),
        Err(LifecycleError::ShardDead)
    );
    assert_eq!(engine.recover_shard(1), Err(LifecycleError::ShardAlive));
    // Degraded, never dropped: the zone's requests fall back to its
    // offline landmarks and count as sheds.
    match engine.submit(zone_point).unwrap() {
        EngineDecision::Degraded { shard, .. } => assert_eq!(shard, victim),
        other => panic!("dead shard must degrade, got {other:?}"),
    }
    assert!(matches!(
        engine.submit_nowait(zone_point).unwrap(),
        Admission::Shed { shard } if shard == victim
    ));
    assert!(engine.decision_view(victim).is_none());
    assert_eq!(engine.shards_active(), 1);
    let snap = engine.snapshot().unwrap();
    assert_eq!(snap.shards_active, 1);
    assert!(snap.shards[victim].server.stations.is_empty());
    assert!(snap.shed_total >= 2);
    // Recovery restores full service for the zone.
    engine.recover_shard(victim).unwrap();
    assert_eq!(engine.shards_active(), 2);
    let d = engine.submit(zone_point).unwrap();
    assert!(!d.degraded());
    assert_eq!(engine.lifecycle_ops().recovers, 1);
}

/// With the subsystem disabled (the default), every control method
/// refuses with `LifecycleDisabled` and the engine behaves exactly like
/// the static build.
#[test]
fn disabled_lifecycle_refuses_all_controls() {
    let engine = Engine::start(
        &clustered_history(),
        EngineConfig {
            shards: 2,
            partition: Partition::UniformGrid,
            ..EngineConfig::default()
        },
    );
    let disabled = Err(LifecycleError::LifecycleDisabled);
    assert_eq!(engine.checkpoint_shard(0), disabled);
    assert_eq!(engine.kill_shard(0).err(), disabled.err());
    assert_eq!(engine.recover_shard(0), disabled);
    assert_eq!(engine.split_shard(0).err(), disabled.err());
    assert_eq!(engine.merge_shards(0, 1).err(), disabled.err());
    assert!(engine.lifecycle_tick().is_err());
    assert_eq!(engine.lifecycle_ops().checkpoints, 0);
    assert!(!engine.submit(Point::new(500.0, 500.0)).unwrap().degraded());
}

/// When the bounded WAL drops entries past the covering checkpoint's
/// high-water mark, recovery refuses with `WalGap` instead of silently
/// rebuilding a diverged shard; the zone keeps serving degraded.
#[test]
fn wal_gap_refuses_unreplayable_recovery() {
    let engine = Engine::start(
        &clustered_history(),
        EngineConfig {
            shards: 1,
            partition: Partition::UniformGrid,
            telemetry: TelemetryConfig::disabled(),
            lifecycle: LifecycleConfig {
                enabled: true,
                // A 2-entry WAL with no re-checkpointing: 50 admits later
                // the suffix past the initial image is long gone.
                checkpoint_every: 1,
                wal_capacity: 2,
                ..LifecycleConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    for &p in &request_stream(50) {
        engine.submit(p).unwrap();
    }
    engine.kill_shard(0).unwrap();
    assert_eq!(engine.recover_shard(0), Err(LifecycleError::WalGap));
    // Still dead, still serving degraded.
    assert_eq!(engine.shards_active(), 0);
    assert!(engine.submit(Point::new(500.0, 500.0)).unwrap().degraded());
}

/// The policy pump splits a persistently hot shard and the split relieves
/// pressure; everything driven through the public tick, no manual split.
#[test]
fn lifecycle_tick_splits_a_hot_shard() {
    let engine = Engine::start(
        &clustered_history(),
        EngineConfig {
            shards: 1,
            partition: Partition::UniformGrid,
            decision_path: DecisionPath::SyncShared,
            queue_capacity: 4,
            service_delay: Duration::from_millis(2),
            telemetry: TelemetryConfig::disabled(),
            lifecycle: LifecycleConfig {
                enabled: true,
                hysteresis_ticks: 2,
                max_shards: 4,
                ..LifecycleConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    // Offer ~2k req/s against a 500 req/s drain: the ring stays full and
    // sheds accumulate, while the admitted trickle still spreads over the
    // whole field so the split cut has demand on both sides.
    let stream = request_stream(400);
    let mut split_seen = false;
    for (i, &p) in stream.iter().enumerate() {
        let _ = engine.submit_nowait(p).unwrap();
        std::thread::sleep(Duration::from_micros(500));
        if i % 25 == 24 {
            for action in engine.lifecycle_tick().unwrap() {
                if matches!(action, esharing_engine::LifecycleAction::Split { .. }) {
                    split_seen = true;
                }
            }
        }
    }
    assert!(
        split_seen,
        "a 4-deep queue with 2 ms service under a sustained 2x overload must trip the split policy"
    );
    assert!(engine.shard_count() > 1);
    let ops = engine.lifecycle_ops();
    // Shard-count conservation: starting from 1 shard, every split adds
    // one and every merge removes one (no kills in this test).
    assert_eq!(1 + ops.splits - ops.merges, engine.shard_count() as u64);
}

proptest! {
    /// Satellite (d): `ShardCheckpoint` encode → decode → encode is the
    /// identity on the *byte* level, and a shard restored from the
    /// decoded image makes its next `k` decisions bit-for-bit identically
    /// to the original instance.
    #[test]
    fn checkpoint_round_trips_and_restored_decisions_match(
        seed in 0u64..1 << 32,
        warm in 0usize..150,
        next_k in 1usize..40,
    ) {
        let mut cfg = SystemConfig {
            seed,
            ..SystemConfig::default()
        };
        cfg.deviation.seed = seed ^ 0xA5A5_5A5A;
        let mut system = ESharing::new(cfg.clone());
        let jitter = (seed % 1009) as usize;
        let history: Vec<Point> = (0..200)
            .map(|i| Point::new(((i * 37 + jitter) % 2000) as f64, ((i * 53) % 2000) as f64))
            .collect();
        system.bootstrap(&history);
        for i in 0..warm {
            let p = Point::new(((i * 97 + jitter) % 2000) as f64, ((i * 31) % 2000) as f64);
            system.handle_request(p).unwrap();
        }
        let mut latency = LatencyHistogram::new();
        for i in 0..warm as u64 {
            latency.record_ns(i * 997 + 3);
        }
        let ckpt = ShardCheckpoint {
            system_seed: cfg.seed,
            deviation_seed: cfg.deviation.seed,
            wal_high_water: warm as u64,
            reopt_epoch: seed % 7,
            landmark_swaps: seed % 11,
            latency,
            system: system.checkpoint().unwrap(),
        };
        let bytes = ckpt.encode();
        let decoded = ShardCheckpoint::decode(&bytes).unwrap();
        prop_assert_eq!(&decoded, &ckpt);
        prop_assert_eq!(decoded.encode(), bytes);
        let mut restored = ESharing::restore(cfg, decoded.system);
        for j in 0..next_k {
            let p = Point::new(
                ((j * 211 + jitter) % 2000) as f64,
                ((j * 67 + 5) % 2000) as f64,
            );
            prop_assert_eq!(
                restored.handle_request(p).unwrap(),
                system.handle_request(p).unwrap(),
                "decision {} diverged after restore", j
            );
        }
        prop_assert_eq!(restored.metrics(), system.metrics());
        prop_assert_eq!(restored.stations(), system.stations());
        prop_assert_eq!(restored.last_similarity(), system.last_similarity());
    }
}

/// Deferred-drift failover: kill a shard *between* a doubling-boundary
/// snapshot and its verdict commit, on both decision paths. The
/// checkpoint must carry the pending re-test (boundary snapshot plus any
/// already-stored verdict), and the recovered shard must reconverge
/// bit-identically with a run that was never killed — the re-test is a
/// pure function of the snapshot, so the restored side recomputes the
/// same verdict regardless of where the off-seat evaluation stood at the
/// kill.
#[test]
fn kill_between_boundary_snapshot_and_verdict_commit_reconverges() {
    let history = clustered_history();
    let stream = request_stream(600);
    for path in [DecisionPath::SyncShared, DecisionPath::Mailbox] {
        let mut cfg = lifecycle_config(path);
        // Telemetry on: the per-shard `esharing_drift_pending` gauge is
        // how the test observes "armed but uncommitted" from outside.
        cfg.telemetry = TelemetryConfig::default();
        cfg.system.deviation.drift_mode = esharing_placement::online::DriftMode::Deferred;
        let reference = Engine::start(&history, cfg.clone());
        let reference_decisions: Vec<EngineDecision> = stream
            .iter()
            .map(|&p| reference.submit(p).unwrap())
            .collect();
        let reference_systems = reference.shutdown();

        let engine = Engine::start(&history, cfg);
        let victim = 0usize;
        let mut killed = false;
        let mut decisions = Vec::with_capacity(stream.len());
        for (i, &p) in stream.iter().enumerate() {
            if !killed && i >= 300 {
                let snap = engine.snapshot().unwrap();
                let pending = snap.shards[victim].registry.gauge("esharing_drift_pending");
                if pending == Some(1.0) {
                    // The image captures the armed re-test; the kill lands
                    // before its commit boundary.
                    engine.checkpoint_shard(victim).unwrap();
                    engine.kill_shard(victim).unwrap();
                    engine.recover_shard(victim).unwrap();
                    killed = true;
                }
            }
            decisions.push(engine.submit(p).unwrap());
        }
        assert!(
            killed,
            "{path:?}: no armed re-test observed after request 300"
        );
        assert_eq!(
            decisions, reference_decisions,
            "{path:?}: decision stream diverged after mid-re-test failover"
        );
        let systems = engine.shutdown();
        for (shard, (sys, reference_sys)) in systems.iter().zip(&reference_systems).enumerate() {
            assert_eq!(
                sys.stations(),
                reference_sys.stations(),
                "{path:?} shard {shard}: stations diverged"
            );
            assert_eq!(
                sys.metrics(),
                reference_sys.metrics(),
                "{path:?} shard {shard}: metrics diverged"
            );
            assert_eq!(
                sys.last_similarity(),
                reference_sys.last_similarity(),
                "{path:?} shard {shard}: drift state diverged"
            );
        }
    }
}

/// A recovered engine keeps checkpoint/recover working repeatedly (the
/// WAL sequence space is continuous across incarnations).
#[test]
fn repeated_kill_recover_cycles_stay_consistent() {
    let history = clustered_history();
    let stream = request_stream(300);
    let reference = Engine::start(&history, lifecycle_config(DecisionPath::SyncShared));
    let reference_decisions: Vec<EngineDecision> = stream
        .iter()
        .map(|&p| reference.submit(p).unwrap())
        .collect();
    let reference_systems = reference.shutdown();

    let engine = Engine::start(&history, lifecycle_config(DecisionPath::SyncShared));
    let mut decisions = Vec::with_capacity(stream.len());
    for (i, &p) in stream.iter().enumerate() {
        if i % 60 == 30 {
            let victim = (i / 60) % 2;
            engine.checkpoint_shard(victim).unwrap();
        }
        if i % 60 == 59 {
            let victim = (i / 60) % 2;
            engine.kill_shard(victim).unwrap();
            engine.recover_shard(victim).unwrap();
        }
        decisions.push(engine.submit(p).unwrap());
    }
    assert_eq!(decisions, reference_decisions);
    assert!(engine.lifecycle_ops().recovers >= 4);
    let systems = engine.shutdown();
    for (sys, reference_sys) in systems.iter().zip(&reference_systems) {
        assert_eq!(sys.stations(), reference_sys.stations());
        assert_eq!(sys.metrics(), reference_sys.metrics());
    }
}

/// Lifecycle transitions are journalled and exported: the fleet snapshot
/// carries `ShardSplit` / `ShardMerged` / `ShardRecovered` events and the
/// `/metrics` families show the active-shard gauge and op counters.
#[test]
fn lifecycle_events_and_metrics_are_exported() {
    let engine = Engine::start(
        &clustered_history(),
        EngineConfig {
            shards: 2,
            partition: Partition::UniformGrid,
            decision_path: DecisionPath::SyncShared,
            lifecycle: LifecycleConfig {
                enabled: true,
                max_shards: 4,
                ..LifecycleConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    for &p in &request_stream(120) {
        engine.submit(p).unwrap();
    }
    let new_shard = engine.split_shard(0).unwrap();
    engine.merge_shards(0, new_shard).unwrap();
    engine.checkpoint_shard(1).unwrap();
    engine.kill_shard(1).unwrap();
    engine.recover_shard(1).unwrap();
    let snap = engine.snapshot().unwrap();
    assert_eq!(snap.shards_active, 2);
    assert_eq!(snap.lifecycle.splits, 1);
    assert_eq!(snap.lifecycle.merges, 1);
    assert_eq!(snap.lifecycle.recovers, 1);
    // Explicit checkpoint plus the implicit ones the structural ops and
    // recovery store for their new shards.
    assert!(snap.lifecycle.checkpoints >= 1);
    assert_eq!(snap.registry.gauge("esharing_shards_active"), Some(2.0));
    assert!(snap.registry.counter_total("esharing_lifecycle_ops_total") >= 3);
    let prom = snap.to_prometheus();
    assert!(prom.contains("esharing_shards_active 2"));
    assert!(prom.contains("esharing_lifecycle_ops_total{op=\"split\"} 1"));
    assert!(prom.contains("esharing_lifecycle_ops_total{op=\"merge\"} 1"));
    assert!(prom.contains("esharing_lifecycle_ops_total{op=\"recover\"} 1"));
    let kinds: Vec<String> = snap
        .events
        .iter()
        .map(|r| format!("{:?}", r.event.kind))
        .collect();
    assert!(kinds.iter().any(|k| k.starts_with("ShardSplit")));
    assert!(kinds.iter().any(|k| k.starts_with("ShardMerged")));
    assert!(kinds.iter().any(|k| k.starts_with("ShardRecovered")));
    // Fleet totals survive the churn: split + merge conserve sums.
    assert_eq!(snap.metrics.requests_served, 120);
    let json = snap.to_json();
    assert!(json.contains("\"shards_active\": 2"));
    assert!(json.contains("\"lifecycle_splits\": 1"));
}
