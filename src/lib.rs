//! # e-sharing
//!
//! Facade crate for the E-Sharing reproduction — a two-tier data-driven
//! online optimization framework for dockless electric bike sharing
//! (Zhou et al., ICDCS 2020).
//!
//! This crate re-exports every member crate of the workspace under one
//! namespace so applications can depend on a single crate:
//!
//! * [`geo`] — planar/geographic geometry, geohash, grids.
//! * [`stats`] — Peacock's 2-D KS test, ECDFs, samplers, error metrics.
//! * [`linalg`] — the dense linear algebra kernel behind the LSTM.
//! * [`forecast`] — LSTM / MA / ARIMA demand forecasting.
//! * [`dataset`] — the synthetic Mobike-like trip & energy workload.
//! * [`placement`] — Tier 1: offline (1.61-factor) and online parking
//!   location placement, including the paper's deviation-penalty algorithm.
//! * [`charging`] — Tier 2: charging cost model, user incentives, TSP
//!   routing for maintenance operators.
//! * [`core`] — the end-to-end orchestration of both tiers.
//! * [`engine`] — the zone-sharded serving engine: partitioned online
//!   placement behind a backpressured router, with replay-driven load
//!   generation.
//! * [`telemetry`] — the observability kernel: metrics registry, bounded
//!   event journal, latency histograms, and the Prometheus/JSON scrape
//!   server the engine exposes via `Engine::serve_telemetry`.
//!
//! # Quickstart
//!
//! ```
//! use e_sharing::geo::Point;
//! use e_sharing::placement::{PlpInstance, offline};
//!
//! // Four destinations in two natural clusters, uniform opening cost.
//! let clients = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 0.0),
//!     Point::new(1000.0, 1000.0),
//!     Point::new(1010.0, 1000.0),
//! ];
//! let instance = PlpInstance::with_uniform_cost(clients, 100.0);
//! let solution = offline::jms_greedy(&instance);
//! assert_eq!(solution.open_facilities().len(), 2);
//! ```

pub use esharing_charging as charging;
pub use esharing_core as core;
pub use esharing_dataset as dataset;
pub use esharing_engine as engine;
pub use esharing_forecast as forecast;
pub use esharing_geo as geo;
pub use esharing_linalg as linalg;
pub use esharing_placement as placement;
pub use esharing_stats as stats;
pub use esharing_telemetry as telemetry;
