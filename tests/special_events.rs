//! End-to-end test of the paper's motivating scenario: a special event
//! creates a demand surge at an uncovered location; the online algorithm
//! detects the shift and follows it.

use e_sharing::core::{ESharing, SystemConfig};
use e_sharing::dataset::{CityConfig, SpecialEvent, SyntheticCity, TripGenerator};
use e_sharing::geo::Point;

#[test]
fn stadium_event_gets_coverage_online() {
    let city = SyntheticCity::generate(&CityConfig {
        trips_per_day: 1_200.0,
        ..CityConfig::default()
    });
    // Venue in a corner of the field POIs avoid (the generator keeps POIs
    // away from edges).
    let venue = Point::new(2_950.0, 2_950.0);

    // Bootstrap on two ordinary days.
    let mut generator = TripGenerator::new(&city, 11);
    let history = generator.generate_days(0, 2);
    let mut system = ESharing::new(SystemConfig::default());
    system.bootstrap(&history.iter().map(|t| t.end).collect::<Vec<_>>());
    let covered_before = system
        .stations()
        .iter()
        .filter(|s| s.distance(venue) < 400.0)
        .count();

    // A big evening event on day 2.
    generator.add_event(SpecialEvent {
        location: venue,
        day: 2,
        start_hour: 18,
        duration_h: 4,
        arrivals_per_hour: 150.0,
        scatter: 100.0,
    });
    let live = generator.generate_days(2, 1);
    let mut venue_walks = Vec::new();
    for trip in &live {
        let decision = system.handle_request(trip.end).expect("bootstrapped");
        if trip.end.distance(venue) < 300.0 {
            let walk = match decision {
                e_sharing::placement::online::Decision::Assigned { walking, .. } => walking,
                e_sharing::placement::online::Decision::Opened { .. } => 0.0,
            };
            venue_walks.push(walk);
        }
    }
    assert!(
        venue_walks.len() > 300,
        "surge volume {} too small for the test to be meaningful",
        venue_walks.len()
    );

    let covered_after = system
        .stations()
        .iter()
        .filter(|s| s.distance(venue) < 400.0)
        .count();
    assert!(
        covered_after > covered_before,
        "no station followed the event ({covered_before} -> {covered_after})"
    );
    // Late surge arrivals walk far less than the distance to the nearest
    // pre-event landmark.
    let tail_mean: f64 = venue_walks[venue_walks.len() - 100..].iter().sum::<f64>() / 100.0;
    let nearest_landmark = system
        .landmarks()
        .iter()
        .map(|l| l.distance(venue))
        .fold(f64::INFINITY, f64::min);
    assert!(
        tail_mean < nearest_landmark,
        "late surge arrivals walk {tail_mean:.0} m, landmarks are {nearest_landmark:.0} m away"
    );
}
