//! Morning rebalancing — the availability substrate the paper assumes.
//!
//! §II-B: "We assume that the reserves of E-bikes are balanced, which
//! satisfy the demand and do not overwhelm the capacity by executing the
//! procedures in [9]–[11]." This example executes that procedure inside
//! the simulation: after each simulated day, a truck redistributes bikes
//! toward stations in proportion to their share of pick-up demand.
//!
//! Run with: `cargo run --release --example rebalancing`

use e_sharing::core::{Simulation, SystemConfig};
use e_sharing::dataset::CityConfig;

fn main() {
    let mut sim = Simulation::new(
        &CityConfig {
            trips_per_day: 1_200.0,
            fleet_size: 600,
            ..CityConfig::default()
        },
        SystemConfig::default(),
        2024,
    );
    sim.bootstrap_days(2);
    println!(
        "bootstrapped {} stations; fleet of {} bikes\n",
        sim.system().landmarks().len(),
        sim.fleet().len()
    );

    println!(
        "{:>4} {:>7} {:>13} {:>12} {:>12} {:>10}",
        "day", "trips", "bikes moved", "stops", "truck km", "residual"
    );
    for _ in 0..5 {
        let day = sim.run_day();
        let plan = sim.morning_rebalance(12);
        println!(
            "{:>4} {:>7} {:>13} {:>12} {:>12.1} {:>10}",
            day.day,
            day.trips,
            plan.bikes_moved,
            plan.stops.len(),
            plan.distance_m / 1_000.0,
            plan.residual_imbalance
        );
    }
    println!(
        "\nreading: each morning the truck undoes the previous day's drift —\n\
         commuter flows pile bikes at work/subway clusters, the plan returns\n\
         them to where the next morning's pick-ups start."
    );
}
