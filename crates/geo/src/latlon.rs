//! Geographic coordinates and a local planar projection.
//!
//! The Mobike dataset the paper evaluates on stores trip endpoints as
//! geohashes, i.e. latitude/longitude. The placement algorithms, however,
//! work in a planar field measured in meters (e.g. the 3 × 3 km study area).
//! [`LocalProjection`] bridges the two with an equirectangular projection
//! around a reference point, which is accurate to well under a meter at
//! city scale.

use crate::{GeoError, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A geographic coordinate in degrees.
///
/// # Examples
///
/// ```
/// use esharing_geo::LatLon;
///
/// let tiananmen = LatLon::new(39.9055, 116.3976).unwrap();
/// let olympic_park = LatLon::new(40.0026, 116.3977).unwrap();
/// let d = tiananmen.haversine_distance(olympic_park);
/// assert!((d - 10_800.0).abs() < 100.0); // ~10.8 km apart
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    lat: f64,
    lon: f64,
}

impl LatLon {
    /// Creates a coordinate, validating ranges.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::CoordinateOutOfRange`] if `lat` is outside
    /// `[-90, 90]`, `lon` is outside `[-180, 180]`, or either is not finite.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoError> {
        if !lat.is_finite() || !lon.is_finite() || lat.abs() > 90.0 || lon.abs() > 180.0 {
            return Err(GeoError::CoordinateOutOfRange { lat, lon });
        }
        Ok(LatLon { lat, lon })
    }

    /// Latitude in degrees.
    #[inline]
    pub fn lat(self) -> f64 {
        self.lat
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lon(self) -> f64 {
        self.lon
    }

    /// Great-circle distance to `other` in meters using the haversine
    /// formula.
    pub fn haversine_distance(self, other: LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}°, {:.6}°", self.lat, self.lon)
    }
}

/// An equirectangular projection centered on a reference coordinate, mapping
/// [`LatLon`] to planar [`Point`]s in meters (east = +x, north = +y).
///
/// At the ≤ 10 km scale of the paper's study field the projection error is
/// negligible compared to the 100 m grid granularity.
///
/// # Examples
///
/// ```
/// use esharing_geo::{LatLon, LocalProjection};
///
/// let origin = LatLon::new(39.9, 116.39).unwrap();
/// let proj = LocalProjection::new(origin);
/// let p = proj.project(LatLon::new(39.91, 116.40).unwrap());
/// let back = proj.unproject(p).unwrap();
/// assert!((back.lat() - 39.91).abs() < 1e-9);
/// assert!((back.lon() - 116.40).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: LatLon,
    /// Meters per degree of longitude at the origin latitude.
    m_per_deg_lon: f64,
    /// Meters per degree of latitude.
    m_per_deg_lat: f64,
}

impl LocalProjection {
    /// Creates a projection centered at `origin`.
    pub fn new(origin: LatLon) -> Self {
        let m_per_deg_lat = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
        let m_per_deg_lon = m_per_deg_lat * origin.lat().to_radians().cos();
        LocalProjection {
            origin,
            m_per_deg_lon,
            m_per_deg_lat,
        }
    }

    /// The reference coordinate mapped to the planar origin.
    #[inline]
    pub fn origin(&self) -> LatLon {
        self.origin
    }

    /// Projects a geographic coordinate into local planar meters.
    pub fn project(&self, c: LatLon) -> Point {
        Point::new(
            (c.lon() - self.origin.lon()) * self.m_per_deg_lon,
            (c.lat() - self.origin.lat()) * self.m_per_deg_lat,
        )
    }

    /// Inverse of [`LocalProjection::project`].
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::CoordinateOutOfRange`] if the point maps outside
    /// valid latitude/longitude ranges.
    pub fn unproject(&self, p: Point) -> Result<LatLon, GeoError> {
        LatLon::new(
            self.origin.lat() + p.y / self.m_per_deg_lat,
            self.origin.lon() + p.x / self.m_per_deg_lon,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        assert!(LatLon::new(91.0, 0.0).is_err());
        assert!(LatLon::new(-91.0, 0.0).is_err());
        assert!(LatLon::new(0.0, 181.0).is_err());
        assert!(LatLon::new(0.0, -181.0).is_err());
        assert!(LatLon::new(f64::NAN, 0.0).is_err());
        assert!(LatLon::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn accepts_boundary_values() {
        assert!(LatLon::new(90.0, 180.0).is_ok());
        assert!(LatLon::new(-90.0, -180.0).is_ok());
    }

    #[test]
    fn haversine_zero_for_identical() {
        let c = LatLon::new(39.9, 116.4).unwrap();
        assert_eq!(c.haversine_distance(c), 0.0);
    }

    #[test]
    fn haversine_symmetric() {
        let a = LatLon::new(39.9, 116.4).unwrap();
        let b = LatLon::new(40.0, 116.5).unwrap();
        let d1 = a.haversine_distance(b);
        let d2 = b.haversine_distance(a);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn haversine_one_degree_latitude() {
        // One degree of latitude is ~111.2 km everywhere.
        let a = LatLon::new(39.0, 116.0).unwrap();
        let b = LatLon::new(40.0, 116.0).unwrap();
        let d = a.haversine_distance(b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn projection_roundtrip() {
        let origin = LatLon::new(39.9, 116.39).unwrap();
        let proj = LocalProjection::new(origin);
        for (lat, lon) in [(39.92, 116.41), (39.88, 116.35), (39.9, 116.39)] {
            let c = LatLon::new(lat, lon).unwrap();
            let back = proj.unproject(proj.project(c)).unwrap();
            assert!((back.lat() - lat).abs() < 1e-9);
            assert!((back.lon() - lon).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_matches_haversine_at_city_scale() {
        let origin = LatLon::new(39.9, 116.39).unwrap();
        let proj = LocalProjection::new(origin);
        let a = LatLon::new(39.905, 116.395).unwrap();
        let b = LatLon::new(39.915, 116.405).unwrap();
        let planar = proj.project(a).distance(proj.project(b));
        let sphere = a.haversine_distance(b);
        // Within 0.1% at ~1.4 km scale.
        assert!((planar - sphere).abs() / sphere < 1e-3);
    }

    #[test]
    fn origin_projects_to_zero() {
        let origin = LatLon::new(31.2, 121.5).unwrap();
        let proj = LocalProjection::new(origin);
        let p = proj.project(origin);
        assert!(p.norm() < 1e-9);
        assert_eq!(proj.origin(), origin);
    }

    #[test]
    fn display_formats_degrees() {
        let c = LatLon::new(39.9, 116.4).unwrap();
        assert!(format!("{c}").contains('°'));
    }
}
