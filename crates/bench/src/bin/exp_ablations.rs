//! Ablation studies over the design choices called out in `DESIGN.md` §7.
//!
//! 1. KS-switched penalty vs each fixed type under a mid-run regime change
//!    (validates the §V-C switching rule);
//! 2. the cost-doubling trigger β;
//! 3. the tolerance L against the spread of the request distribution
//!    (validates the §V-B conclusion that L should fit mean + spread);
//! 4. offline guidance on/off — landmarks + count vs a cold start;
//! 5. TSP solver choice for the operator route.

use esharing_bench::Table;
use esharing_charging::tsp;
use esharing_geo::Point;
use esharing_placement::offline::jms_greedy;
use esharing_placement::online::{DeviationConfig, DeviationPenalty, Meyerson, OnlinePlacement};
use esharing_placement::penalty::{PenaltyType, PolynomialPenalty};
use esharing_placement::PlpInstance;
use esharing_stats::samplers::{Gaussian2d, PointSampler, UniformField};
use esharing_stats::RunningStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SPACE: f64 = 5_000.0;
const TRIALS: u64 = 25;

fn uniform(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let field = UniformField::centered_square(Point::new(side / 2.0, side / 2.0), side);
    (0..n).map(|_| field.sample(&mut rng)).collect()
}

fn landmarks(history: &[Point]) -> Vec<Point> {
    let inst = PlpInstance::with_uniform_cost(history.to_vec(), SPACE);
    jms_greedy(&inst).facility_points(&inst)
}

/// Ablation 1: auto-switching vs fixed penalties when the distribution
/// shifts mid-stream and returns.
fn ablate_penalty_switching() {
    println!("— Ablation 1: KS-driven penalty switching under a regime change —");
    let mut t = Table::new(vec!["policy".into(), "total cost (mean)".into()]);
    let policies: [(&str, Option<PenaltyType>); 4] = [
        ("auto (KS-switched)", None),
        ("fixed Type I", Some(PenaltyType::TypeI)),
        ("fixed Type II", Some(PenaltyType::TypeII)),
        ("fixed Type III", Some(PenaltyType::TypeIII)),
    ];
    for (name, fixed) in policies {
        let mut total = RunningStats::new();
        for seed in 0..TRIALS {
            let history = uniform(150, 1_000.0, 100 + seed);
            let marks = landmarks(&history);
            let mut alg = DeviationPenalty::new(
                marks,
                history,
                DeviationConfig {
                    space_cost: SPACE,
                    auto_penalty: fixed.is_none(),
                    initial_penalty: fixed.unwrap_or(PenaltyType::TypeII),
                    seed,
                    ..DeviationConfig::default()
                },
            );
            // Normal → shifted → normal.
            for p in uniform(100, 1_000.0, 200 + seed) {
                alg.handle(p);
            }
            for p in uniform(120, 400.0, 300 + seed)
                .into_iter()
                .map(|p| p + Point::new(2_500.0, 2_500.0))
            {
                alg.handle(p);
            }
            for p in uniform(100, 1_000.0, 400 + seed) {
                alg.handle(p);
            }
            total.push(alg.cost().total());
        }
        t.row(vec![name.into(), format!("{:.0}", total.mean())]);
    }
    println!("{t}");
}

/// Ablation 2: the doubling trigger β.
fn ablate_beta() {
    println!("— Ablation 2: cost-doubling trigger β —");
    let mut t = Table::new(vec![
        "beta".into(),
        "stations (mean)".into(),
        "total cost (mean)".into(),
    ]);
    for beta in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let mut stations = RunningStats::new();
        let mut total = RunningStats::new();
        for seed in 0..TRIALS {
            let history = uniform(150, 1_000.0, 500 + seed);
            let marks = landmarks(&history);
            let mut alg = DeviationPenalty::new(
                marks,
                history,
                DeviationConfig {
                    space_cost: SPACE,
                    beta,
                    seed,
                    ..DeviationConfig::default()
                },
            );
            for p in uniform(300, 1_000.0, 600 + seed) {
                alg.handle(p);
            }
            stations.push(alg.stations().len() as f64);
            total.push(alg.cost().total());
        }
        t.row(vec![
            format!("{beta:.0}"),
            format!("{:.1}", stations.mean()),
            format!("{:.0}", total.mean()),
        ]);
    }
    println!("{t}(larger β delays the cost growth, tolerating more online stations)\n");
}

/// Ablation 3: tolerance L against the spread of a Gaussian demand cloud.
fn ablate_tolerance() {
    println!("— Ablation 3: tolerance L vs distribution spread (Gaussian sigma = 150 m) —");
    let mut t = Table::new(vec!["L (m)".into(), "total cost (mean)".into()]);
    let mut best = (0.0, f64::INFINITY);
    for tolerance in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let mut total = RunningStats::new();
        for seed in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(700 + seed);
            let cloud = Gaussian2d::new(Point::new(500.0, 500.0), 150.0);
            let history: Vec<Point> = (0..150).map(|_| cloud.sample(&mut rng)).collect();
            let marks = landmarks(&history);
            let mut alg = DeviationPenalty::new(
                marks,
                history,
                DeviationConfig {
                    space_cost: SPACE,
                    tolerance,
                    seed,
                    ..DeviationConfig::default()
                },
            );
            for _ in 0..300 {
                let p = cloud.sample(&mut rng);
                alg.handle(p);
            }
            total.push(alg.cost().total());
        }
        if total.mean() < best.1 {
            best = (tolerance, total.mean());
        }
        t.row(vec![
            format!("{tolerance:.0}"),
            format!("{:.0}", total.mean()),
        ]);
    }
    println!(
        "{t}best L = {:.0} m — the paper's conclusion: fit L to the mean + spread of the\nrequest distribution (here ~1-2 sigma).\n",
        best.0
    );
}

/// Ablation 4: what the offline guidance is worth.
fn ablate_guidance() {
    println!("— Ablation 4: offline guidance on/off —");
    let mut guided = RunningStats::new();
    let mut unguided = RunningStats::new();
    for seed in 0..TRIALS {
        let history = uniform(150, 1_000.0, 900 + seed);
        let stream = uniform(200, 1_000.0, 950 + seed);
        let marks = landmarks(&history);
        let mut with = DeviationPenalty::new(
            marks,
            history,
            DeviationConfig {
                space_cost: SPACE,
                seed,
                ..DeviationConfig::default()
            },
        );
        guided.push(with.run(stream.iter().copied()).total());
        let mut without = Meyerson::new(SPACE, seed);
        unguided.push(without.run(stream.iter().copied()).total());
    }
    println!(
        "guided (Algorithm 2): {:.0}   unguided (Meyerson): {:.0}   saving {:.0}%\n",
        guided.mean(),
        unguided.mean(),
        100.0 * (unguided.mean() - guided.mean()) / unguided.mean()
    );
}

/// Ablation 5: TSP solver choice on the operator route.
fn ablate_tsp() {
    println!("— Ablation 5: TSP solver on the operator route (12 stops) —");
    let mut nn = RunningStats::new();
    let mut two = RunningStats::new();
    let mut exact = RunningStats::new();
    let depot = Point::ORIGIN;
    for seed in 0..TRIALS {
        let stops = uniform(12, 3_000.0, 1_000 + seed);
        let order_nn = tsp::nearest_neighbor(depot, &stops);
        nn.push(tsp::route_length(depot, &stops, &order_nn));
        let order_two = tsp::two_opt(depot, &stops, &order_nn);
        two.push(tsp::route_length(depot, &stops, &order_two));
        exact.push(tsp::route_length(
            depot,
            &stops,
            &tsp::held_karp(depot, &stops),
        ));
    }
    println!(
        "nearest-neighbour: {:.0} m   +2-opt: {:.0} m   exact (Held-Karp): {:.0} m",
        nn.mean(),
        two.mean(),
        exact.mean()
    );
    println!(
        "2-opt closes {:.0}% of the NN-to-optimal gap",
        100.0 * (nn.mean() - two.mean()) / (nn.mean() - exact.mean()).max(1e-9)
    );
}

/// Ablation 6: the §V-B future-work extension — a polynomial penalty
/// fitted to the historical deviation distribution, on a bimodal workload
/// no closed-form type matches (a near cluster plus a far ring).
fn ablate_polynomial_penalty() {
    println!("\n— Ablation 6: fitted polynomial penalty on a bimodal workload —");
    let center = Point::new(500.0, 500.0);
    let sample_bimodal = |rng: &mut StdRng, n: usize| -> Vec<Point> {
        let near = Gaussian2d::new(center, 60.0);
        let far = Gaussian2d::new(center + Point::new(600.0, 0.0), 60.0);
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    near.sample(rng)
                } else {
                    far.sample(rng)
                }
            })
            .collect()
    };
    let mut t = Table::new(vec!["penalty".into(), "total cost (mean)".into()]);
    let mut results: Vec<(String, f64)> = Vec::new();
    for choice in ["fitted polynomial", "Type I", "Type II", "Type III"] {
        let mut total = RunningStats::new();
        for seed in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(2_000 + seed);
            let history = sample_bimodal(&mut rng, 200);
            // Landmark: the near-cluster center only — the far ring is the
            // "deviation" the penalty must learn to accommodate.
            let marks = vec![center];
            let deviations: Vec<f64> = history.iter().map(|p| p.distance(center)).collect();
            let custom = if choice == "fitted polynomial" {
                Some(PolynomialPenalty::fit(&deviations, 5).expect("fit"))
            } else {
                None
            };
            let initial = match choice {
                "Type I" => PenaltyType::TypeI,
                "Type II" => PenaltyType::TypeII,
                "Type III" => PenaltyType::TypeIII,
                _ => PenaltyType::TypeII,
            };
            let mut alg = DeviationPenalty::new(
                marks,
                history,
                DeviationConfig {
                    space_cost: 2_000.0,
                    auto_penalty: false,
                    initial_penalty: initial,
                    custom_penalty: custom,
                    beta: 16.0,
                    initial_decision_cost: Some(400.0),
                    seed,
                    ..DeviationConfig::default()
                },
            );
            let stream = sample_bimodal(&mut rng, 300);
            total.push(alg.run(stream).total());
        }
        results.push((choice.to_string(), total.mean()));
        t.row(vec![choice.into(), format!("{:.0}", total.mean())]);
    }
    println!("{t}");
    let best = results
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    println!(
        "best: {} — the fitted penalty should be competitive with (or beat) every\nclosed form on a shape none of them was designed for.",
        best.0
    );
}

/// Ablation 7: the uniform offer (the paper's design) vs a
/// full-information oracle that pays each user exactly their reservation.
fn ablate_personalized_incentives() {
    use esharing_charging::{ChargingCostParams, IncentiveMechanism, StationEnergy, UserModel};
    println!("\n— Ablation 7: uniform offer vs personalized (oracle) payments —");
    let mut uniform_paid = RunningStats::new();
    let mut uniform_moved = RunningStats::new();
    let mut oracle_paid = RunningStats::new();
    let mut oracle_moved = RunningStats::new();
    for seed in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(3_000 + seed);
        let stations: Vec<StationEnergy> = (0..25)
            .map(|_| StationEnergy {
                location: Point::new(
                    rand::Rng::gen_range(&mut rng, 0.0..3_000.0),
                    rand::Rng::gen_range(&mut rng, 0.0..3_000.0),
                ),
                low_bikes: rand::Rng::gen_range(&mut rng, 0..20),
                arrivals: 80,
            })
            .collect();
        let mechanism = IncentiveMechanism::new(
            ChargingCostParams::default(),
            UserModel::default(),
            0.4,
            seed,
        );
        let u = mechanism.run_period(&stations);
        uniform_paid.push(u.incentives_paid);
        uniform_moved.push(u.relocated as f64);
        let o = mechanism.run_period_personalized(&stations);
        oracle_paid.push(o.incentives_paid);
        oracle_moved.push(o.relocated as f64);
    }
    println!(
        "uniform offer : paid {:.0}$ for {:.0} relocations ({:.2}$/bike)",
        uniform_paid.mean(),
        uniform_moved.mean(),
        uniform_paid.mean() / uniform_moved.mean().max(1.0)
    );
    println!(
        "oracle        : paid {:.0}$ for {:.0} relocations ({:.2}$/bike)",
        oracle_paid.mean(),
        oracle_moved.mean(),
        oracle_paid.mean() / oracle_moved.mean().max(1.0)
    );
    println!("the gap is the price of the paper's one-shot, privacy-preserving uniform offer.");
}

fn main() {
    println!("E-Sharing ablation studies ({TRIALS} trials each)\n");
    ablate_penalty_switching();
    ablate_beta();
    ablate_tolerance();
    ablate_guidance();
    ablate_tsp();
    ablate_polynomial_penalty();
    ablate_personalized_incentives();
}
