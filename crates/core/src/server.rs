//! A concurrent request server around the orchestrator.
//!
//! The paper's architecture streams trip requests from mobile apps to a
//! server backend where E-Sharing computes parking assignments (Fig. 3).
//! [`RequestServer`] reproduces that deployment shape: a dedicated worker
//! thread owns the [`ESharing`] state and serves requests arriving over a
//! channel, so many client threads can submit concurrently while decisions
//! stay strictly serialized (the online algorithm is inherently
//! sequential — each decision depends on all earlier ones).
//!
//! One worker is a hard throughput ceiling: every decision in the city
//! funnels through a single thread. The sharded serving engine
//! (`esharing-engine`) lifts that ceiling by partitioning the city into
//! zones and running one instance of this same pipeline per zone; with a
//! single shard it reproduces this server's decisions bit-identically.

use crate::metrics::LatencyHistogram;
use crate::telemetry::{ServeTrace, TelemetryProbe, WorkerTelemetry};
use crate::ESharing;
use crossbeam::channel::{bounded, Sender};
use esharing_geo::Point;
use esharing_placement::online::Decision;
use esharing_placement::PlacementCost;
use esharing_telemetry::TelemetryConfig;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Command {
    Request {
        destination: Point,
        reply: Sender<Decision>,
        /// Stamped at submit time; the worker measures arrival → decision.
        arrival: Instant,
    },
    /// A whole client batch moved through the queue as one command: one
    /// send, one reply, decisions in input order.
    Batch {
        destinations: Vec<Point>,
        reply: Sender<Vec<Decision>>,
        arrival: Instant,
    },
    Snapshot {
        reply: Sender<ServerSnapshot>,
    },
    /// Telemetry probe: registry snapshot + drained journal (empty when
    /// the server runs with telemetry disabled).
    Telemetry {
        reply: Sender<TelemetryProbe>,
    },
    Shutdown,
}

/// Error returned when submitting to a server whose worker has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerClosed;

impl fmt::Display for ServerClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "the request server has shut down")
    }
}

impl Error for ServerClosed {}

/// Tuning knobs for a [`RequestServer`] worker.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bounded command-queue depth; submitters block once it fills.
    pub queue_capacity: usize,
    /// Emulated downstream work per request (auth, persistence, push
    /// notification — latency the real backend would spend off-CPU). The
    /// worker sleeps this long before each decision, so it bounds a single
    /// worker's throughput at `1 / service_delay` regardless of core
    /// count. Zero (the default) disables the emulation.
    pub service_delay: Duration,
    /// Telemetry: metrics registry, event journal, and sampled decision
    /// tracing on the worker. Enabled by default (tracing is sampled, so
    /// the decision path pays a few counter increments per request).
    pub telemetry: TelemetryConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 1024,
            service_delay: Duration::ZERO,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// A point-in-time view of the server state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSnapshot {
    /// Open stations at snapshot time.
    pub stations: Vec<Point>,
    /// Accumulated placement cost.
    pub placement: PlacementCost,
    /// Requests served so far.
    pub requests_served: u64,
    /// Arrival → decision latency of every request served so far
    /// (includes queueing and the emulated downstream delay).
    pub latency: LatencyHistogram,
}

/// Handle for submitting requests to a running server. Cheap to clone;
/// every clone talks to the same worker.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    tx: Sender<Command>,
}

impl ServerHandle {
    /// Submits a trip destination and waits for the decision.
    ///
    /// # Errors
    ///
    /// Returns [`ServerClosed`] if the server has been shut down.
    pub fn submit(&self, destination: Point) -> Result<Decision, ServerClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Command::Request {
                destination,
                reply: reply_tx,
                arrival: Instant::now(),
            })
            .map_err(|_| ServerClosed)?;
        reply_rx.recv().map_err(|_| ServerClosed)
    }

    /// Submits a whole batch of destinations and waits for all decisions,
    /// returned in input order.
    ///
    /// The batch crosses the command queue as *one* message and comes back
    /// as one reply, so a client that already holds many requests pays two
    /// channel operations total instead of two per request. Decisions are
    /// bit-identical to submitting the same destinations one by one — the
    /// worker serves batch items through the same serialized path.
    ///
    /// # Errors
    ///
    /// Returns [`ServerClosed`] if the server has been shut down.
    pub fn submit_batch(&self, destinations: Vec<Point>) -> Result<Vec<Decision>, ServerClosed> {
        if destinations.is_empty() {
            return Ok(Vec::new());
        }
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Command::Batch {
                destinations,
                reply: reply_tx,
                arrival: Instant::now(),
            })
            .map_err(|_| ServerClosed)?;
        reply_rx.recv().map_err(|_| ServerClosed)
    }

    /// Fetches a state snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServerClosed`] if the server has been shut down.
    pub fn snapshot(&self) -> Result<ServerSnapshot, ServerClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Command::Snapshot { reply: reply_tx })
            .map_err(|_| ServerClosed)?;
        reply_rx.recv().map_err(|_| ServerClosed)
    }

    /// Fetches the worker's telemetry: a registry snapshot plus the
    /// journal events recorded since the previous probe. Empty when the
    /// server runs with telemetry disabled.
    ///
    /// # Errors
    ///
    /// Returns [`ServerClosed`] if the server has been shut down.
    pub fn telemetry(&self) -> Result<TelemetryProbe, ServerClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Command::Telemetry { reply: reply_tx })
            .map_err(|_| ServerClosed)?;
        reply_rx.recv().map_err(|_| ServerClosed)
    }
}

/// The server: owns the worker thread.
#[derive(Debug)]
pub struct RequestServer {
    tx: Sender<Command>,
    worker: Option<JoinHandle<ESharing>>,
    /// Count of requests accepted, readable without a round-trip.
    accepted: Arc<Mutex<u64>>,
}

impl RequestServer {
    /// Starts the server around a bootstrapped system with default tuning.
    ///
    /// # Panics
    ///
    /// Panics if the system has not been bootstrapped (the worker would
    /// reject every request).
    pub fn start(system: ESharing) -> Self {
        Self::start_with(system, ServerConfig::default())
    }

    /// Starts the server with explicit [`ServerConfig`] tuning.
    ///
    /// # Panics
    ///
    /// Panics if the system has not been bootstrapped or the queue
    /// capacity is zero.
    pub fn start_with(system: ESharing, config: ServerConfig) -> Self {
        assert!(
            !system.landmarks().is_empty(),
            "bootstrap the system before starting the server"
        );
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let (tx, rx) = bounded::<Command>(config.queue_capacity);
        let accepted = Arc::new(Mutex::new(0u64));
        let accepted_worker = Arc::clone(&accepted);
        let service_delay = config.service_delay;
        let telemetry_cfg = config.telemetry;
        let worker = std::thread::spawn(move || {
            let mut system = system;
            let mut latency = LatencyHistogram::new();
            let mut telemetry = telemetry_cfg
                .enabled
                .then(|| WorkerTelemetry::new(&telemetry_cfg, Instant::now()));
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    Command::Request {
                        destination,
                        reply,
                        arrival,
                    } => {
                        // Sampled tracing: decide before the decision, and
                        // measure the mailbox wait at dequeue (now) only
                        // for traced requests — the clock reads are the
                        // cost the sampling bounds.
                        let mailbox_ns = telemetry
                            .as_mut()
                            .and_then(|t| t.should_trace().then(|| elapsed_ns(arrival)));
                        if !service_delay.is_zero() {
                            std::thread::sleep(service_delay);
                        }
                        let (decision, trace) = match mailbox_ns {
                            Some(wait_ns) => {
                                let (decision, tr) = system
                                    .handle_request_traced(destination)
                                    .expect("server system is bootstrapped");
                                (decision, Some(ServeTrace::mailbox(wait_ns, tr)))
                            }
                            None => (
                                system
                                    .handle_request(destination)
                                    .expect("server system is bootstrapped"),
                                None,
                            ),
                        };
                        let latency_ns = elapsed_ns(arrival);
                        latency.record_ns(latency_ns);
                        if let Some(t) = telemetry.as_mut() {
                            t.on_decision(&mut system, &decision, latency_ns, trace);
                        }
                        *accepted_worker.lock() += 1;
                        // A dropped reply receiver is fine: client gave up.
                        let _ = reply.send(decision);
                    }
                    Command::Batch {
                        destinations,
                        reply,
                        arrival,
                    } => {
                        let mut decisions = Vec::with_capacity(destinations.len());
                        for destination in destinations {
                            let mailbox_ns = telemetry
                                .as_mut()
                                .and_then(|t| t.should_trace().then(|| elapsed_ns(arrival)));
                            if !service_delay.is_zero() {
                                std::thread::sleep(service_delay);
                            }
                            let (decision, trace) = match mailbox_ns {
                                Some(wait_ns) => {
                                    let (decision, tr) = system
                                        .handle_request_traced(destination)
                                        .expect("server system is bootstrapped");
                                    (decision, Some(ServeTrace::mailbox(wait_ns, tr)))
                                }
                                None => (
                                    system
                                        .handle_request(destination)
                                        .expect("server system is bootstrapped"),
                                    None,
                                ),
                            };
                            let latency_ns = elapsed_ns(arrival);
                            latency.record_ns(latency_ns);
                            if let Some(t) = telemetry.as_mut() {
                                t.on_decision(&mut system, &decision, latency_ns, trace);
                            }
                            *accepted_worker.lock() += 1;
                            decisions.push(decision);
                        }
                        let _ = reply.send(decisions);
                    }
                    Command::Snapshot { reply } => {
                        let _ = reply.send(ServerSnapshot {
                            stations: system.stations(),
                            placement: system.metrics().placement,
                            requests_served: system.metrics().requests_served,
                            latency: latency.clone(),
                        });
                    }
                    Command::Telemetry { reply } => {
                        let probe = match telemetry.as_mut() {
                            Some(t) => {
                                t.observe_maintenance(system.metrics());
                                t.probe()
                            }
                            None => TelemetryProbe::empty(),
                        };
                        let _ = reply.send(probe);
                    }
                    Command::Shutdown => break,
                }
            }
            system
        });
        RequestServer {
            tx,
            worker: Some(worker),
            accepted,
        }
    }

    /// A handle for submitting requests (cloneable across threads).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            tx: self.tx.clone(),
        }
    }

    /// Requests accepted so far.
    pub fn accepted(&self) -> u64 {
        *self.accepted.lock()
    }

    /// Stops the worker and returns the final system state.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread panicked.
    pub fn shutdown(mut self) -> ESharing {
        let _ = self.tx.send(Command::Shutdown);
        self.worker
            .take()
            .expect("worker present until shutdown")
            .join()
            .expect("worker thread must not panic")
    }
}

/// Nanoseconds elapsed since `t`, saturating at `u64::MAX`.
fn elapsed_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

impl Drop for RequestServer {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = self.tx.send(Command::Shutdown);
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bootstrapped_system(seed: u64) -> ESharing {
        let mut rng = StdRng::seed_from_u64(seed);
        let history: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let mut system = ESharing::new(SystemConfig::default());
        system.bootstrap(&history);
        system
    }

    #[test]
    fn serves_sequential_requests() {
        let server = RequestServer::start(bootstrapped_system(1));
        let handle = server.handle();
        for i in 0..50 {
            let d = handle
                .submit(Point::new((i * 17 % 1000) as f64, (i * 31 % 1000) as f64))
                .unwrap();
            let _ = d.station();
        }
        assert_eq!(server.accepted(), 50);
        let snap = handle.snapshot().unwrap();
        assert_eq!(snap.requests_served, 50);
        assert!(!snap.stations.is_empty());
        let system = server.shutdown();
        assert_eq!(system.metrics().requests_served, 50);
    }

    #[test]
    fn concurrent_clients_all_served() {
        let server = RequestServer::start(bootstrapped_system(2));
        let mut joins = Vec::new();
        for t in 0..4 {
            let handle = server.handle();
            joins.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                for _ in 0..25 {
                    let p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                    let _ = handle.submit(p).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(server.accepted(), 100);
        let snap = server.handle().snapshot().unwrap();
        assert_eq!(snap.requests_served, 100);
        assert!(snap.placement.total() > 0.0);
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let server = RequestServer::start(bootstrapped_system(5));
        let handle = server.handle();
        assert!(handle.submit(Point::new(1.0, 1.0)).is_ok());
        let _ = server.shutdown();
        assert_eq!(handle.submit(Point::new(2.0, 2.0)), Err(ServerClosed));
        assert_eq!(handle.snapshot(), Err(ServerClosed));
    }

    #[test]
    fn service_delay_bounds_throughput() {
        let server = RequestServer::start_with(
            bootstrapped_system(6),
            ServerConfig {
                service_delay: Duration::from_millis(2),
                ..ServerConfig::default()
            },
        );
        let handle = server.handle();
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            handle.submit(Point::new(10.0, 10.0)).unwrap();
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "5 requests at 2 ms each must take >= 10 ms"
        );
        assert_eq!(server.accepted(), 5);
    }

    #[test]
    fn batched_submit_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(40);
        let stream: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let sequential = RequestServer::start(bootstrapped_system(41));
        let handle = sequential.handle();
        let expected: Vec<Decision> = stream.iter().map(|&p| handle.submit(p).unwrap()).collect();
        let batched = RequestServer::start(bootstrapped_system(41));
        let got = batched.handle().submit_batch(stream).unwrap();
        // Bit-for-bit: decisions carry f64 stations and walking costs.
        assert_eq!(got, expected);
        assert_eq!(batched.accepted(), 300);
        assert!(batched
            .handle()
            .submit_batch(Vec::new())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn snapshot_reports_latency_telemetry() {
        let server = RequestServer::start(bootstrapped_system(42));
        let handle = server.handle();
        for i in 0..40 {
            handle
                .submit(Point::new((i * 13 % 1000) as f64, (i * 29 % 1000) as f64))
                .unwrap();
        }
        let snap = handle.snapshot().unwrap();
        assert_eq!(snap.latency.count(), 40);
        assert!(snap.latency.p50_ns() > 0);
        assert!(snap.latency.p999_ns() >= snap.latency.p50_ns());
        assert!(snap.latency.max_ns() >= snap.latency.p999_ns());
    }

    #[test]
    fn telemetry_probe_reports_exact_counters_and_sampled_stages() {
        let server = RequestServer::start_with(
            bootstrapped_system(50),
            ServerConfig {
                telemetry: TelemetryConfig {
                    sample_every: 4,
                    ..TelemetryConfig::default()
                },
                ..ServerConfig::default()
            },
        );
        let handle = server.handle();
        for i in 0..40 {
            handle
                .submit(Point::new((i * 13 % 1000) as f64, (i * 29 % 1000) as f64))
                .unwrap();
        }
        let probe = handle.telemetry().unwrap();
        assert_eq!(probe.registry.counter_total("esharing_decisions_total"), 40);
        assert_eq!(
            probe
                .registry
                .histogram_total("esharing_decision_latency_ns")
                .count(),
            40
        );
        // 1-in-4 sampling over 40 requests: 10 traces x 4 stages.
        assert_eq!(
            probe
                .registry
                .histogram_total("esharing_decision_stage_ns")
                .count(),
            40
        );
        assert!(probe.registry.gauge("esharing_stations_open").unwrap() > 0.0);
        // Counters survive the journal drain; a second probe stays exact.
        let again = handle.telemetry().unwrap();
        assert_eq!(again.registry.counter_total("esharing_decisions_total"), 40);
        assert!(again.events.is_empty());
        let _ = server.shutdown();
    }

    #[test]
    fn telemetry_disabled_serves_and_probes_empty() {
        let server = RequestServer::start_with(
            bootstrapped_system(51),
            ServerConfig {
                telemetry: TelemetryConfig::disabled(),
                ..ServerConfig::default()
            },
        );
        let handle = server.handle();
        for i in 0..10 {
            handle.submit(Point::new(i as f64, i as f64)).unwrap();
        }
        let probe = handle.telemetry().unwrap();
        assert!(probe.registry.is_empty());
        assert!(probe.events.is_empty());
        assert_eq!(server.accepted(), 10);
    }

    #[test]
    fn telemetry_sampling_does_not_change_decisions() {
        // Aggressive 1-in-1 tracing must reproduce the untraced run
        // bit-for-bit (the traced path only adds clock reads).
        let mut rng = StdRng::seed_from_u64(60);
        let stream: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let plain = RequestServer::start_with(
            bootstrapped_system(61),
            ServerConfig {
                telemetry: TelemetryConfig::disabled(),
                ..ServerConfig::default()
            },
        );
        let expected = plain.handle().submit_batch(stream.clone()).unwrap();
        let traced = RequestServer::start_with(
            bootstrapped_system(61),
            ServerConfig {
                telemetry: TelemetryConfig {
                    sample_every: 1,
                    ..TelemetryConfig::default()
                },
                ..ServerConfig::default()
            },
        );
        let got = traced.handle().submit_batch(stream).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let server = RequestServer::start(bootstrapped_system(3));
        let handle = server.handle();
        handle.submit(Point::new(1.0, 1.0)).unwrap();
        drop(server); // must not hang or leak the worker
    }

    #[test]
    #[should_panic(expected = "bootstrap")]
    fn rejects_unbootstrapped_system() {
        let _ = RequestServer::start(ESharing::new(SystemConfig::default()));
    }
}
