//! Criterion benches for the PLP solvers: the offline 1.61-factor greedy
//! scaling in n (the paper's O(N³)), the per-request throughput of the
//! three online algorithms, and the decision-path latency of
//! `DeviationPenalty::handle` at city scale (10 000 stations) against the
//! same algorithm over the B-tree reference index — the row pair that
//! quantifies what the flat-hash-grid index buys on the serving path.
//!
//! Setting `ESHARING_BENCH_SMOKE` skips the Criterion groups and emits the
//! perf trajectory with one timed iteration per row (CI smoke mode;
//! combine with `ESHARING_BENCH_DIR` to redirect the JSON).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use esharing_bench::PerfEmitter;
use esharing_geo::{NearestNeighborIndex, NearestNeighborIndexReference, Point, SpatialIndex};
use esharing_placement::offline::{jms_greedy, jms_greedy_reference};
use esharing_placement::online::{
    DeviationConfig, DeviationPenalty, DeviationPenaltyCore, Meyerson, OnlineKMeans,
    OnlinePlacement,
};
use esharing_placement::PlpInstance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn uniform(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

fn bench_offline(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_jms");
    for n in [50usize, 100, 200] {
        let instance = PlpInstance::with_uniform_cost(uniform(n, 1_000.0, 1), 5_000.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| black_box(jms_greedy(inst)));
        });
    }
    group.finish();
}

fn bench_online(c: &mut Criterion) {
    let stream = uniform(1_000, 1_000.0, 2);
    let history = uniform(200, 1_000.0, 3);
    let landmark_inst = PlpInstance::with_uniform_cost(history.clone(), 5_000.0);
    let landmarks = jms_greedy(&landmark_inst).facility_points(&landmark_inst);
    let k = landmarks.len().max(1);

    let mut group = c.benchmark_group("online_per_request");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("meyerson", |b| {
        b.iter(|| {
            let mut alg = Meyerson::new(5_000.0, 7);
            black_box(alg.run(stream.iter().copied()))
        });
    });
    group.bench_function("online_kmeans", |b| {
        b.iter(|| {
            let mut alg = OnlineKMeans::new(k, stream.len(), 5_000.0, 7);
            black_box(alg.run(stream.iter().copied()))
        });
    });
    group.bench_function("deviation_penalty", |b| {
        b.iter(|| {
            let mut alg = DeviationPenalty::new(
                landmarks.clone(),
                history.clone(),
                DeviationConfig {
                    space_cost: 5_000.0,
                    seed: 7,
                    ..DeviationConfig::default()
                },
            );
            black_box(alg.run(stream.iter().copied()))
        });
    });
    group.finish();
}

/// Median wall-clock of streaming `stream` through a freshly constructed
/// `DeviationPenaltyCore<I>`. Construction (including the `O(k²)` minimum
/// landmark-spacing scan) happens outside the timed region: this measures
/// the serving path — `handle` — alone.
fn median_handle_elapsed<I: SpatialIndex>(
    landmarks: &[Point],
    history: &[Point],
    stream: &[Point],
    iters: usize,
) -> Duration {
    let run = || {
        let mut alg = DeviationPenaltyCore::<I>::new(
            landmarks.to_vec(),
            history.to_vec(),
            DeviationConfig {
                space_cost: 5_000.0,
                seed: 7,
                ..DeviationConfig::default()
            },
        );
        let t0 = Instant::now();
        for &p in stream {
            black_box(alg.handle(p));
        }
        t0.elapsed()
    };
    run(); // warm-up
    let mut times: Vec<Duration> = (0..iters.max(1)).map(|_| run()).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Perf-trajectory emission: times the cached-cost parallel greedy against
/// the sequential reference at increasing sizes (including the n = 50
/// small-instance regime, where `jms_greedy` now delegates to the
/// reference loop), plus the `DeviationPenalty::handle` decision-path
/// latency at 10 000 stations over the flat-hash-grid index vs. the B-tree
/// reference index, and writes `BENCH_placement.json` at the repo root
/// (see `esharing_bench::perf`). `smoke` drops to one timed iteration per
/// row.
fn perf_trajectory(smoke: bool) {
    let iters = |full: usize| if smoke { 1 } else { full };
    let mut perf = PerfEmitter::new("placement");
    // Process warm-up: the first timed block otherwise absorbs the cold
    // start (allocator, frequency ramp) and skews the smallest-n rows.
    let warm = PlpInstance::with_uniform_cost(uniform(50, 1_000.0, 1), 5_000.0);
    for _ in 0..if smoke { 3 } else { 20 } {
        black_box(jms_greedy(&warm));
        black_box(jms_greedy_reference(&warm));
    }
    for (n, full) in [(50usize, 9), (100, 7), (200, 5), (400, 3)] {
        let instance = PlpInstance::with_uniform_cost(uniform(n, 1_000.0, 1), 5_000.0);
        perf.measure("jms_greedy", n, iters(full), || {
            black_box(jms_greedy(&instance))
        });
        perf.measure("jms_greedy_reference", n, iters(full), || {
            black_box(jms_greedy_reference(&instance))
        });
    }

    // Decision-path latency at city scale: identical seeds, streams and
    // config on both index backends, so every run replays the exact same
    // decision sequence and only the nearest-parking index differs.
    let stations = uniform(10_000, 50_000.0, 4);
    let history = uniform(2_000, 50_000.0, 5);
    let stream = uniform(5_000, 50_000.0, 6);
    let flat =
        median_handle_elapsed::<NearestNeighborIndex>(&stations, &history, &stream, iters(5));
    perf.record_duration("deviation_handle", stream.len(), flat);
    let reference = median_handle_elapsed::<NearestNeighborIndexReference>(
        &stations,
        &history,
        &stream,
        iters(5),
    );
    perf.record_duration("deviation_handle_reference_index", stream.len(), reference);
    eprintln!(
        "decision latency, 10k stations x {} requests: flat grid {:.1} ms vs reference {:.1} ms ({:.2}x)",
        stream.len(),
        flat.as_secs_f64() * 1_000.0,
        reference.as_secs_f64() * 1_000.0,
        reference.as_secs_f64() / flat.as_secs_f64().max(f64::MIN_POSITIVE),
    );

    match perf.write() {
        Ok(path) => eprintln!("perf trajectory written to {}", path.display()),
        Err(e) => eprintln!("perf trajectory emission failed: {e}"),
    }
}

criterion_group!(benches, bench_offline, bench_online);

// The offline build stubs `Criterion` as a unit struct, which makes this
// `default()` call trip `default_constructed_unit_structs`; the real crate
// needs it.
#[allow(clippy::default_constructed_unit_structs)]
fn main() {
    let smoke = std::env::var_os("ESHARING_BENCH_SMOKE").is_some();
    if !smoke {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
    perf_trajectory(smoke);
}
