//! The maintenance operator's shift (§V-E).
//!
//! "In a fixed amount of working hours, the operator forms a TSP route
//! through all the demand sites and conduct\[s\] charging in a paralleled
//! manner at each location." The operator tours the stations that still
//! hold low-battery bikes; stations beyond the shift budget stay
//! uncharged, which produces the %-charged utility metric of Fig. 12(b):
//! without incentives the tail is spread over many stations and the shift
//! runs out; with aggregation the (fewer) stations all fit.

use crate::tsp;
use crate::{ChargingCostParams, IncentiveOutcome, StationEnergy};
use esharing_geo::Point;
use serde::{Deserialize, Serialize};

/// A maintenance operator with a fixed shift budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Start/end point of the tour.
    pub depot: Point,
    /// Travel speed in meters per second (e-trike hauling chargers).
    pub speed_mps: f64,
    /// Time spent at each station (batteries are swapped in parallel, so
    /// this is per stop, not per bike), in seconds.
    pub service_time_s: f64,
    /// Total shift length in seconds.
    pub shift_s: f64,
    /// Stations holding at most this many low bikes are skipped — "the
    /// operator can skip those locations with only a few ones left"
    /// (§IV-C Remarks). 0 skips only empty stations.
    pub skip_below: usize,
}

impl Default for Operator {
    fn default() -> Self {
        Operator {
            depot: Point::ORIGIN,
            speed_mps: 4.0,
            service_time_s: 600.0,
            shift_s: 4.0 * 3_600.0,
            skip_below: 0,
        }
    }
}

/// Outcome of one operator shift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftReport {
    /// Stations visited, in tour order (indices into the input slice).
    pub visited: Vec<usize>,
    /// Bikes charged at the visited stations.
    pub bikes_charged: usize,
    /// Bikes that remained uncharged when the shift ended.
    pub bikes_missed: usize,
    /// Distance travelled in meters.
    pub distance_m: f64,
    /// Service component of the tour cost: `|visited| · q`.
    pub service_cost: f64,
    /// Delay component: `Σ t·d` over visited positions.
    pub delay_cost: f64,
    /// Energy component: `b ·` bikes charged.
    pub energy_cost: f64,
    /// Monetary cost of the tour: service + delay + energy (Eq. 10 over
    /// the visited prefix).
    pub tour_cost: f64,
}

impl ShiftReport {
    /// Fraction of low bikes charged, in `[0, 1]`; 1 when there was
    /// nothing to charge.
    pub fn charged_fraction(&self) -> f64 {
        let total = self.bikes_charged + self.bikes_missed;
        if total == 0 {
            1.0
        } else {
            self.bikes_charged as f64 / total as f64
        }
    }
}

impl Operator {
    /// Creates an operator.
    ///
    /// # Panics
    ///
    /// Panics if any rate or budget is not positive and finite.
    pub fn new(depot: Point, speed_mps: f64, service_time_s: f64, shift_s: f64) -> Self {
        assert!(
            speed_mps.is_finite() && speed_mps > 0.0,
            "speed must be positive"
        );
        assert!(
            service_time_s.is_finite() && service_time_s > 0.0,
            "service time must be positive"
        );
        assert!(
            shift_s.is_finite() && shift_s > 0.0,
            "shift must be positive"
        );
        Operator {
            depot,
            speed_mps,
            service_time_s,
            shift_s,
            skip_below: 0,
        }
    }

    /// Returns a copy with the skip policy set.
    pub fn with_skip_below(self, skip_below: usize) -> Self {
        Operator { skip_below, ..self }
    }

    /// Tours the stations holding low bikes (TSP order) until the shift
    /// budget is exhausted; stations with zero low bikes are skipped
    /// entirely ("the operator can skip those locations with only a few
    /// ones left" — we skip exactly the empty ones and visit the rest in
    /// shortest-route order).
    pub fn run_shift(
        &self,
        stations: &[StationEnergy],
        params: &ChargingCostParams,
    ) -> ShiftReport {
        let demand: Vec<(usize, Point, usize)> = stations
            .iter()
            .enumerate()
            .filter(|(_, s)| s.low_bikes > self.skip_below)
            .map(|(i, s)| (i, s.location, s.low_bikes))
            .collect();
        let points: Vec<Point> = demand.iter().map(|&(_, p, _)| p).collect();
        let order = tsp::solve(self.depot, &points);
        let mut elapsed = 0.0;
        let mut at = self.depot;
        let mut visited = Vec::new();
        let mut bikes_charged = 0usize;
        let mut distance_m = 0.0;
        let mut service_cost = 0.0;
        let mut delay_cost = 0.0;
        let mut energy_cost = 0.0;
        for (position, &stop) in order.iter().enumerate() {
            let (orig_idx, loc, low) = demand[stop];
            let leg = at.distance(loc);
            let need = leg / self.speed_mps + self.service_time_s;
            if elapsed + need > self.shift_s {
                break;
            }
            elapsed += need;
            distance_m += leg;
            at = loc;
            visited.push(orig_idx);
            bikes_charged += low;
            service_cost += params.service_q;
            delay_cost += position as f64 * params.delay_d;
            energy_cost += low as f64 * params.energy_b;
        }
        let total_low: usize = stations.iter().map(|s| s.low_bikes).sum();
        ShiftReport {
            visited,
            bikes_charged,
            bikes_missed: total_low - bikes_charged,
            distance_m,
            service_cost,
            delay_cost,
            energy_cost,
            tour_cost: service_cost + delay_cost + energy_cost,
        }
    }

    /// Applies an incentive outcome to the station list, producing the
    /// post-relocation energy state the shift should be run on.
    pub fn stations_after_incentives(
        stations: &[StationEnergy],
        outcome: &IncentiveOutcome,
    ) -> Vec<StationEnergy> {
        assert_eq!(
            stations.len(),
            outcome.remaining_low.len(),
            "outcome does not match station list"
        );
        stations
            .iter()
            .zip(&outcome.remaining_low)
            .map(|(s, &low)| StationEnergy {
                low_bikes: low,
                ..*s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station(x: f64, y: f64, low: usize) -> StationEnergy {
        StationEnergy {
            location: Point::new(x, y),
            low_bikes: low,
            arrivals: 0,
        }
    }

    #[test]
    fn empty_demand_trivial_shift() {
        let op = Operator::default();
        let report = op.run_shift(&[station(10.0, 10.0, 0)], &ChargingCostParams::default());
        assert!(report.visited.is_empty());
        assert_eq!(report.bikes_charged, 0);
        assert_eq!(report.bikes_missed, 0);
        assert_eq!(report.charged_fraction(), 1.0);
        assert_eq!(report.distance_m, 0.0);
    }

    #[test]
    fn generous_shift_charges_everything() {
        let op = Operator::default();
        let stations = vec![
            station(100.0, 0.0, 3),
            station(200.0, 0.0, 0),
            station(300.0, 0.0, 5),
        ];
        let report = op.run_shift(&stations, &ChargingCostParams::default());
        assert_eq!(report.bikes_charged, 8);
        assert_eq!(report.bikes_missed, 0);
        assert_eq!(report.charged_fraction(), 1.0);
        // Skips the zero-demand station.
        assert_eq!(report.visited.len(), 2);
        assert!(!report.visited.contains(&1));
    }

    #[test]
    fn tight_shift_misses_tail() {
        // Shift only long enough for one stop.
        let op = Operator::new(Point::ORIGIN, 4.0, 600.0, 700.0);
        let stations = vec![station(100.0, 0.0, 2), station(4_000.0, 0.0, 7)];
        let report = op.run_shift(&stations, &ChargingCostParams::default());
        assert_eq!(report.visited, vec![0]);
        assert_eq!(report.bikes_charged, 2);
        assert_eq!(report.bikes_missed, 7);
        assert!((report.charged_fraction() - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation_raises_charged_fraction() {
        // Scattered: 10 stations, one bike each, spread over kilometers.
        // Aggregated: same 10 bikes at 2 stations.
        let op = Operator::new(Point::ORIGIN, 3.0, 900.0, 2.0 * 3600.0);
        let scattered: Vec<StationEnergy> = (0..10)
            .map(|i| station(500.0 * (i + 1) as f64, (i % 3) as f64 * 800.0, 1))
            .collect();
        let aggregated = vec![station(500.0, 0.0, 6), station(1_000.0, 0.0, 4)];
        let params = ChargingCostParams::default();
        let f_scattered = op.run_shift(&scattered, &params).charged_fraction();
        let f_aggregated = op.run_shift(&aggregated, &params).charged_fraction();
        assert!(
            f_aggregated > f_scattered,
            "aggregated {f_aggregated} vs scattered {f_scattered}"
        );
        assert_eq!(f_aggregated, 1.0);
    }

    #[test]
    fn tour_cost_matches_station_costs() {
        let op = Operator::default();
        let stations = vec![station(10.0, 0.0, 2), station(20.0, 0.0, 3)];
        let params = ChargingCostParams::new(10.0, 5.0, 2.0);
        let report = op.run_shift(&stations, &params);
        // Positions 0 and 1: (2*2 + 10 + 0) + (3*2 + 10 + 5) = 14 + 21.
        assert_eq!(report.tour_cost, 35.0);
        assert_eq!(report.service_cost, 20.0);
        assert_eq!(report.delay_cost, 5.0);
        assert_eq!(report.energy_cost, 10.0);
    }

    #[test]
    fn stations_after_incentives_applies_remaining() {
        let stations = vec![station(0.0, 0.0, 5), station(10.0, 0.0, 1)];
        let outcome = IncentiveOutcome {
            remaining_low: vec![0, 6],
            target_of: vec![1, 1],
            incentives_paid: 3.0,
            relocated: 5,
            offers_made: 8,
        };
        let after = Operator::stations_after_incentives(&stations, &outcome);
        assert_eq!(after[0].low_bikes, 0);
        assert_eq!(after[1].low_bikes, 6);
        assert_eq!(after[0].location, stations[0].location);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_speed() {
        let _ = Operator::new(Point::ORIGIN, 0.0, 1.0, 1.0);
    }
}
