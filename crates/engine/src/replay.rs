//! Replay-driven load generation.
//!
//! Feeds recorded destination streams (e.g. `esharing-dataset` trip
//! drop-offs) into any request sink — the sharded [`Engine`] or the
//! single-worker `RequestServer` — from a configurable number of client
//! threads at a configurable offered rate, and reports throughput plus the
//! client-observed latency distribution. The same driver runs both
//! backends, so engine-vs-server comparisons use identical workloads.

use crate::engine::{Engine, EngineClosed, EngineDecision};
use esharing_core::server::ServerHandle;
use esharing_dataset::Trip;
use esharing_geo::Point;
use esharing_stats::RunningStats;
use std::time::{Duration, Instant};

/// What a sink did with one replayed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkOutcome {
    /// Decision made by the online algorithm.
    Served,
    /// Shed by admission control (engine degraded mode).
    Degraded,
    /// The sink has shut down; the driver stops this client.
    Closed,
}

/// Anything the replay driver can push destinations into.
pub trait RequestSink: Sync {
    /// Serves one destination, blocking until the sink resolves it.
    fn serve(&self, destination: Point) -> SinkOutcome;
}

impl RequestSink for Engine {
    fn serve(&self, destination: Point) -> SinkOutcome {
        match self.submit(destination) {
            Ok(EngineDecision::Served { .. }) => SinkOutcome::Served,
            Ok(EngineDecision::Degraded { .. }) => SinkOutcome::Degraded,
            Err(EngineClosed) => SinkOutcome::Closed,
        }
    }
}

impl RequestSink for ServerHandle {
    fn serve(&self, destination: Point) -> SinkOutcome {
        match self.submit(destination) {
            Ok(_) => SinkOutcome::Served,
            Err(_) => SinkOutcome::Closed,
        }
    }
}

/// Load-generation knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// Concurrent client threads; the destination stream is dealt to them
    /// round-robin, so the max in-flight request count equals `clients`.
    pub clients: usize,
    /// Offered request rate across all clients, requests/second. `None`
    /// replays as fast as the sink absorbs (closed-loop).
    pub rate_per_s: Option<f64>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            clients: 4,
            rate_per_s: None,
        }
    }
}

/// Client-observed latency distribution, microseconds. Measured at
/// nanosecond resolution — the fast path decides in single-digit
/// microseconds, where whole-microsecond sampling would quantize the whole
/// distribution into a handful of values — and reported as fractional
/// microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 90th percentile — the first tail quantile operators alert on.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile — the deep tail; meaningful once roughly a
    /// thousand requests have been measured (below that it degenerates to
    /// the maximum).
    pub p999_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

impl LatencySummary {
    fn from_sorted(sorted_ns: &[u64]) -> Self {
        if sorted_ns.is_empty() {
            return LatencySummary {
                count: 0,
                mean_us: 0.0,
                p50_us: 0.0,
                p90_us: 0.0,
                p99_us: 0.0,
                p999_us: 0.0,
                max_us: 0.0,
            };
        }
        let mut stats = RunningStats::new();
        for &v in sorted_ns {
            stats.push(v as f64);
        }
        LatencySummary {
            count: sorted_ns.len() as u64,
            mean_us: stats.mean() / 1_000.0,
            p50_us: percentile(sorted_ns, 0.50) as f64 / 1_000.0,
            p90_us: percentile(sorted_ns, 0.90) as f64 / 1_000.0,
            p99_us: percentile(sorted_ns, 0.99) as f64 / 1_000.0,
            p999_us: percentile(sorted_ns, 0.999) as f64 / 1_000.0,
            max_us: *sorted_ns.last().expect("non-empty") as f64 / 1_000.0,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Outcome of one replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Destinations offered to the sink.
    pub submitted: u64,
    /// Requests the online algorithm decided.
    pub served: u64,
    /// Requests shed to degraded mode.
    pub degraded: u64,
    /// Requests lost to a closed sink.
    pub closed: u64,
    /// Wall-clock of the whole replay.
    pub elapsed: Duration,
    /// Client-observed latency distribution over served + degraded
    /// requests.
    pub latency: LatencySummary,
}

impl ReplayReport {
    /// Served requests per second of wall-clock — the headline throughput.
    pub fn served_per_s(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.served as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Replays `destinations` into `sink` from [`ReplayConfig::clients`]
/// threads, pacing to [`ReplayConfig::rate_per_s`] when set.
///
/// # Panics
///
/// Panics if `clients` is zero.
pub fn replay<S: RequestSink + ?Sized>(
    sink: &S,
    destinations: &[Point],
    cfg: &ReplayConfig,
) -> ReplayReport {
    assert!(cfg.clients > 0, "need at least one client");
    let clients = cfg.clients.min(destinations.len()).max(1);
    // Per-client send period realizing the aggregate offered rate.
    let period = cfg
        .rate_per_s
        .map(|r| Duration::from_secs_f64(clients as f64 / r.max(f64::MIN_POSITIVE)));
    let t0 = Instant::now();
    let parts: Vec<ClientPart> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut part = ClientPart::default();
                    for (k, dest) in destinations
                        .iter()
                        .skip(c)
                        .step_by(clients)
                        .copied()
                        .enumerate()
                    {
                        if let Some(period) = period {
                            // Open-loop pacing against the shared clock so
                            // a slow sink accumulates queueing delay
                            // instead of silently lowering the rate.
                            let due = period.mul_f64(k as f64 + c as f64 / clients as f64);
                            if let Some(wait) = due.checked_sub(t0.elapsed()) {
                                std::thread::sleep(wait);
                            }
                        }
                        part.submitted += 1;
                        let sent = Instant::now();
                        match sink.serve(dest) {
                            SinkOutcome::Served => part.served += 1,
                            SinkOutcome::Degraded => part.degraded += 1,
                            SinkOutcome::Closed => {
                                part.closed += 1;
                                break;
                            }
                        }
                        part.latencies_ns
                            .push(sent.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    }
                    part
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay client must not panic"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let mut all_latencies = Vec::new();
    let mut report = ReplayReport {
        submitted: 0,
        served: 0,
        degraded: 0,
        closed: 0,
        elapsed,
        latency: LatencySummary::from_sorted(&[]),
    };
    for part in parts {
        report.submitted += part.submitted;
        report.served += part.served;
        report.degraded += part.degraded;
        report.closed += part.closed;
        all_latencies.extend(part.latencies_ns);
    }
    all_latencies.sort_unstable();
    report.latency = LatencySummary::from_sorted(&all_latencies);
    report
}

/// Replays a trip stream's drop-off destinations (the paper's live request
/// feed) into `sink`.
pub fn replay_trips<S: RequestSink + ?Sized>(
    sink: &S,
    trips: &[Trip],
    cfg: &ReplayConfig,
) -> ReplayReport {
    replay(sink, &esharing_dataset::destinations(trips), cfg)
}

#[derive(Default)]
struct ClientPart {
    submitted: u64,
    served: u64,
    degraded: u64,
    closed: u64,
    latencies_ns: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Partition};

    fn grid_history() -> Vec<Point> {
        (0..300)
            .map(|i| Point::new(((i * 41) % 1000) as f64, ((i * 17) % 1000) as f64))
            .collect()
    }

    fn stream(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(((i * 29) % 1000) as f64, ((i * 43) % 1000) as f64))
            .collect()
    }

    #[test]
    fn closed_loop_replay_accounts_for_every_request() {
        let engine = Engine::start(
            &grid_history(),
            EngineConfig {
                shards: 2,
                partition: Partition::UniformGrid,
                ..EngineConfig::default()
            },
        );
        let dests = stream(400);
        let report = replay(&engine, &dests, &ReplayConfig::default());
        assert_eq!(report.submitted, 400);
        assert_eq!(report.served + report.degraded + report.closed, 400);
        assert_eq!(report.closed, 0);
        assert!(report.served_per_s() > 0.0);
        assert_eq!(report.latency.count, report.served + report.degraded);
        assert!(report.latency.p50_us <= report.latency.p90_us);
        assert!(report.latency.p90_us <= report.latency.p99_us);
        assert!(report.latency.p99_us <= report.latency.p999_us);
        assert!(report.latency.p999_us <= report.latency.max_us);
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.metrics.requests_served, report.served);
    }

    #[test]
    fn rate_limited_replay_respects_offered_rate() {
        let engine = Engine::start(&grid_history(), EngineConfig::default());
        let dests = stream(100);
        let report = replay(
            &engine,
            &dests,
            &ReplayConfig {
                clients: 2,
                rate_per_s: Some(2_000.0),
            },
        );
        // 100 requests at 2k/s must take at least ~50 ms of wall-clock
        // (generous lower bound for scheduler slop).
        assert!(
            report.elapsed >= Duration::from_millis(40),
            "rate limiter ran too fast: {:?}",
            report.elapsed
        );
        assert_eq!(report.served, 100);
    }

    #[test]
    fn replay_drives_the_plain_request_server_too() {
        use esharing_core::server::RequestServer;
        use esharing_core::{ESharing, SystemConfig};
        let mut system = ESharing::new(SystemConfig::default());
        system.bootstrap(&grid_history());
        let server = RequestServer::start(system);
        let handle = server.handle();
        let report = replay(&handle, &stream(200), &ReplayConfig::default());
        assert_eq!(report.served, 200);
        assert_eq!(report.degraded, 0);
        let _ = server.shutdown();
        // After shutdown the driver reports closed instead of hanging.
        let after = replay(
            &handle,
            &stream(8),
            &ReplayConfig {
                clients: 1,
                rate_per_s: None,
            },
        );
        assert_eq!(after.closed, 1);
        assert_eq!(after.served, 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.5), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        let single = [7u64];
        assert_eq!(percentile(&single, 0.99), 7);
    }

    #[test]
    fn empty_latency_summary_is_zeroed() {
        let s = LatencySummary::from_sorted(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_us, 0.0);
    }

    #[test]
    fn latency_summary_keeps_sub_microsecond_resolution() {
        // 250 ns and 750 ns must not both collapse to 0 µs.
        let s = LatencySummary::from_sorted(&[250, 750]);
        assert_eq!(s.count, 2);
        assert_eq!(s.p50_us, 0.25);
        assert_eq!(s.max_us, 0.75);
        assert_eq!(s.mean_us, 0.5);
    }
}
