//! Fixed-memory in-process time-series store.
//!
//! The registry ([`crate::registry`]) answers "what is the value *now*";
//! this module answers "what was it over the last N seconds" without any
//! external storage. Every series owns one ring of rollup buckets per
//! configured resolution (default 1 s × 120 / 10 s × 180 / 60 s × 240), so
//! memory is fixed at construction shape and old data falls off the back
//! of each ring independently — a fine-grained recent view plus coarse
//! long-horizon trends, exactly the two things the SLO burn-rate engine
//! ([`crate::slo`]) and the elastic-lifecycle trend policy consume.
//!
//! Each scalar bucket keeps `sum / count / min / max`, so windowed rates
//! and averages recompute exactly from the retained buckets (for a
//! monotone counter the windowed delta is `max − min`). Histogram series
//! bucket *deltas* of the mergeable [`LatencyHistogram`], so windowed
//! quantiles come from folding the buckets in range and asking the merged
//! histogram — never from averaging per-bucket quantiles.
//!
//! Feeding is a *sweep*: [`Tsdb::sweep`] walks a [`RegistrySnapshot`] and
//! records every sample. The engine runs sweeps on the drain-worker
//! harvest quantum, off the decision seat; nothing here is touched on the
//! request hot path.

use crate::registry::RegistrySnapshot;
use crate::LatencyHistogram;

/// One rollup resolution: buckets of `bucket_ns` width, `len` of them
/// retained (ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollupSpec {
    /// Bucket width in nanoseconds.
    pub bucket_ns: u64,
    /// Buckets retained before the ring wraps.
    pub len: usize,
}

impl RollupSpec {
    /// A resolution of `len` buckets of `bucket_ms` milliseconds each.
    pub fn from_ms(bucket_ms: u64, len: usize) -> Self {
        RollupSpec {
            bucket_ns: bucket_ms.max(1) * 1_000_000,
            len: len.max(1),
        }
    }

    /// Total span the ring covers.
    pub fn span_ns(&self) -> u64 {
        self.bucket_ns.saturating_mul(self.len as u64)
    }
}

/// Store shape: the rollup resolutions, finest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsdbConfig {
    /// Rollup resolutions, finest first. Clamped to at least one entry.
    pub resolutions: Vec<RollupSpec>,
}

impl Default for TsdbConfig {
    /// 1 s × 120 (two fine minutes), 10 s × 180 (half an hour), 60 s × 240
    /// (four hours).
    fn default() -> Self {
        TsdbConfig {
            resolutions: vec![
                RollupSpec::from_ms(1_000, 120),
                RollupSpec::from_ms(10_000, 180),
                RollupSpec::from_ms(60_000, 240),
            ],
        }
    }
}

impl TsdbConfig {
    /// A store with explicit resolutions (finest first).
    pub fn with_resolutions(resolutions: Vec<RollupSpec>) -> Self {
        TsdbConfig { resolutions }
    }

    fn normalized(&self) -> Vec<RollupSpec> {
        let mut r = self.resolutions.clone();
        if r.is_empty() {
            r = TsdbConfig::default().resolutions;
        }
        r.sort_by_key(|s| s.bucket_ns);
        r
    }
}

/// One rollup bucket of a scalar series: enough to recompute windowed
/// sums, averages, extrema, and (for monotone counters) exact deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rollup {
    /// Sum of the samples that landed in the bucket.
    pub sum: f64,
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Rollup {
    /// The empty bucket (identity of [`Rollup::merge`]).
    pub const EMPTY: Rollup = Rollup {
        sum: 0.0,
        count: 0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };

    /// Folds one sample in.
    pub fn observe(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another rollup in (associative with `observe` up to
    /// floating-point summation order).
    pub fn merge(&mut self, other: &Rollup) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the folded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// What a bucket holds: scalars fold into [`Rollup`], histogram series
/// fold into [`LatencyHistogram`] deltas. Private — the two impls below
/// are the whole universe.
trait Fold: Clone {
    type Sample: ?Sized;
    fn empty() -> Self;
    fn is_unobserved(&self) -> bool;
    fn absorb(&mut self, sample: &Self::Sample);
}

impl Fold for Rollup {
    type Sample = f64;
    fn empty() -> Self {
        Rollup::EMPTY
    }
    fn is_unobserved(&self) -> bool {
        self.count == 0
    }
    fn absorb(&mut self, sample: &f64) {
        self.observe(*sample);
    }
}

impl Fold for LatencyHistogram {
    type Sample = LatencyHistogram;
    fn empty() -> Self {
        LatencyHistogram::new()
    }
    fn is_unobserved(&self) -> bool {
        self.is_empty()
    }
    fn absorb(&mut self, sample: &LatencyHistogram) {
        *self += sample.clone();
    }
}

/// One resolution's ring of buckets. Bucket `b` covers
/// `[b * bucket_ns, (b + 1) * bucket_ns)`; the ring retains the newest
/// `len` bucket indices, clearing skipped slots on advance so sparse
/// series leave genuine gaps rather than stale data.
#[derive(Debug, Clone)]
struct Ring<F: Fold> {
    bucket_ns: u64,
    slots: Vec<F>,
    /// Bucket index of the newest slot; `None` before the first sample.
    head: Option<u64>,
}

impl<F: Fold> Ring<F> {
    fn new(spec: RollupSpec) -> Self {
        Ring {
            bucket_ns: spec.bucket_ns.max(1),
            slots: vec![F::empty(); spec.len.max(1)],
            head: None,
        }
    }

    fn slot_mut(&mut self, bucket: u64) -> &mut F {
        let i = (bucket % self.slots.len() as u64) as usize;
        &mut self.slots[i]
    }

    fn observe(&mut self, t_ns: u64, sample: &F::Sample) {
        let idx = t_ns / self.bucket_ns;
        let len = self.slots.len() as u64;
        match self.head {
            None => {
                self.head = Some(idx);
                let s = self.slot_mut(idx);
                *s = F::empty();
                s.absorb(sample);
            }
            Some(h) if idx == h => self.slot_mut(idx).absorb(sample),
            Some(h) if idx > h => {
                // Advance, clearing every skipped slot (bounded by len).
                let clear_from = if idx - h >= len { idx + 1 - len } else { h + 1 };
                for b in clear_from..=idx {
                    *self.slot_mut(b) = F::empty();
                }
                self.head = Some(idx);
                self.slot_mut(idx).absorb(sample);
            }
            Some(h) => {
                // Late sample: fold into its (still retained) bucket, or
                // drop it if the ring has already wrapped past it.
                if h - idx < len {
                    self.slot_mut(idx).absorb(sample);
                }
            }
        }
    }

    /// Occupied buckets overlapping `[from_ns, to_ns]`, oldest first, as
    /// `(bucket_start_ns, fold)`.
    fn window(&self, from_ns: u64, to_ns: u64) -> Vec<(u64, &F)> {
        let Some(h) = self.head else {
            return Vec::new();
        };
        let len = self.slots.len() as u64;
        let oldest = h.saturating_sub(len - 1);
        let mut out = Vec::new();
        for b in oldest..=h {
            let start = b * self.bucket_ns;
            if start.saturating_add(self.bucket_ns) <= from_ns || start > to_ns {
                continue;
            }
            let f = &self.slots[(b % len) as usize];
            if !f.is_unobserved() {
                out.push((start, f));
            }
        }
        out
    }
}

/// Whether a scalar series carries a monotone counter or an instantaneous
/// gauge reading — windowed queries treat the two differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotone cumulative value; windowed delta is `max − min`.
    Counter,
    /// Instantaneous reading; windowed view is `mean`/`min`/`max`.
    Gauge,
}

#[derive(Debug, Clone)]
struct ScalarSeries {
    name: String,
    labels: Vec<(String, String)>,
    kind: SeriesKind,
    rings: Vec<Ring<Rollup>>,
}

#[derive(Debug, Clone)]
struct HistSeries {
    name: String,
    labels: Vec<(String, String)>,
    rings: Vec<Ring<LatencyHistogram>>,
    /// Last swept cumulative histogram, so each sweep buckets only the
    /// delta since the previous one.
    prev: LatencyHistogram,
}

/// Cumulative-histogram delta since `prev`. A shrink in any bucket means
/// the source was reset (shard recovered from a checkpoint rebuild); the
/// whole current histogram then counts as the delta.
fn hist_delta(prev: &LatencyHistogram, cur: &LatencyHistogram) -> LatencyHistogram {
    let pb = prev.buckets();
    let cb = cur.buckets();
    if cur.count() < prev.count() || cb.iter().zip(pb).any(|(c, p)| c < p) {
        return cur.clone();
    }
    let buckets: Vec<u64> = cb
        .iter()
        .enumerate()
        .map(|(i, &c)| c - pb.get(i).copied().unwrap_or(0))
        .collect();
    // The delta's max is not recoverable from cumulative state; the
    // cumulative max is a safe upper bound for the quantile cap.
    LatencyHistogram::from_parts(
        buckets,
        cur.sum_ns().saturating_sub(prev.sum_ns()),
        cur.max_ns(),
    )
}

/// The store: every observed series keyed by `(name, labels)`, each
/// holding one ring per configured resolution. Single-owner like
/// [`crate::registry::Registry`] — the engine wraps it in a mutex touched
/// only by drain workers and scrape-time readers.
#[derive(Debug, Clone)]
pub struct Tsdb {
    spec: Vec<RollupSpec>,
    scalars: Vec<ScalarSeries>,
    hists: Vec<HistSeries>,
    last_t_ns: u64,
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

impl Tsdb {
    /// An empty store with the configured resolutions.
    pub fn new(cfg: &TsdbConfig) -> Self {
        Tsdb {
            spec: cfg.normalized(),
            scalars: Vec::new(),
            hists: Vec::new(),
            last_t_ns: 0,
        }
    }

    /// The configured resolutions, finest first.
    pub fn resolutions(&self) -> &[RollupSpec] {
        &self.spec
    }

    /// Timestamp of the most recent record (ns since the engine epoch).
    pub fn last_t_ns(&self) -> u64 {
        self.last_t_ns
    }

    /// Number of distinct series observed so far.
    pub fn series_count(&self) -> usize {
        self.scalars.len() + self.hists.len()
    }

    fn scalar_series_mut(
        &mut self,
        name: &str,
        labels: &[(String, String)],
        kind: SeriesKind,
    ) -> &mut ScalarSeries {
        if let Some(i) = self
            .scalars
            .iter()
            .position(|s| s.name == name && s.labels == labels)
        {
            return &mut self.scalars[i];
        }
        let rings = self.spec.iter().map(|&r| Ring::new(r)).collect();
        self.scalars.push(ScalarSeries {
            name: name.to_string(),
            labels: labels.to_vec(),
            kind,
            rings,
        });
        self.scalars.last_mut().expect("just pushed")
    }

    /// Records one scalar sample at `t_ns` into every resolution of the
    /// `(name, labels)` series, creating the series on first sight.
    pub fn record_scalar(
        &mut self,
        t_ns: u64,
        name: &str,
        labels: &[(String, String)],
        kind: SeriesKind,
        v: f64,
    ) {
        self.last_t_ns = self.last_t_ns.max(t_ns);
        let series = self.scalar_series_mut(name, labels, kind);
        for ring in &mut series.rings {
            ring.observe(t_ns, &v);
        }
    }

    /// Records a *cumulative* histogram at `t_ns`: the delta against the
    /// previous sweep of the same series is folded into every resolution.
    pub fn record_histogram(
        &mut self,
        t_ns: u64,
        name: &str,
        labels: &[(String, String)],
        cumulative: &LatencyHistogram,
    ) {
        self.last_t_ns = self.last_t_ns.max(t_ns);
        let spec = &self.spec;
        let series = match self
            .hists
            .iter()
            .position(|s| s.name == name && s.labels == labels)
        {
            Some(i) => &mut self.hists[i],
            None => {
                let rings = spec.iter().map(|&r| Ring::new(r)).collect();
                self.hists.push(HistSeries {
                    name: name.to_string(),
                    labels: labels.to_vec(),
                    rings,
                    prev: LatencyHistogram::new(),
                });
                self.hists.last_mut().expect("just pushed")
            }
        };
        let delta = hist_delta(&series.prev, cumulative);
        series.prev = cumulative.clone();
        if delta.is_empty() {
            return;
        }
        for ring in &mut series.rings {
            ring.observe(t_ns, &delta);
        }
    }

    /// Sweeps a whole registry snapshot at `t_ns`: counters and gauges as
    /// scalar samples, histograms as cumulative deltas. `shard` stamps a
    /// `shard` label onto every series so per-shard sweeps stay distinct.
    pub fn sweep(&mut self, t_ns: u64, snap: &RegistrySnapshot, shard: Option<usize>) {
        let stamp = |labels: &[(String, String)]| -> Vec<(String, String)> {
            let mut l = labels.to_vec();
            if let Some(s) = shard {
                l.push(("shard".to_string(), s.to_string()));
            }
            l
        };
        for s in &snap.counters {
            self.record_scalar(
                t_ns,
                &s.name,
                &stamp(&s.labels),
                SeriesKind::Counter,
                s.value as f64,
            );
        }
        for s in &snap.gauges {
            self.record_scalar(t_ns, &s.name, &stamp(&s.labels), SeriesKind::Gauge, s.value);
        }
        for s in &snap.histograms {
            self.record_histogram(t_ns, &s.name, &stamp(&s.labels), &s.value);
        }
    }

    /// The finest ring index whose span covers `window_ns` (falls back to
    /// the coarsest).
    fn resolution_for(&self, window_ns: u64) -> usize {
        self.spec
            .iter()
            .position(|r| r.span_ns() >= window_ns)
            .unwrap_or(self.spec.len() - 1)
    }

    /// Merged rollup over every scalar series named `name` (any labels)
    /// within the last `window_ns` before `now_ns`. `None` when no bucket
    /// in range holds data.
    pub fn aggregate(&self, name: &str, window_ns: u64, now_ns: u64) -> Option<Rollup> {
        let res = self.resolution_for(window_ns);
        let from = now_ns.saturating_sub(window_ns);
        let mut out: Option<Rollup> = None;
        for s in self.scalars.iter().filter(|s| s.name == name) {
            for (_, r) in s.rings[res].window(from, now_ns) {
                out.get_or_insert(Rollup::EMPTY).merge(r);
            }
        }
        out
    }

    /// [`Tsdb::aggregate`] restricted to one exact label set.
    pub fn aggregate_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        window_ns: u64,
        now_ns: u64,
    ) -> Option<Rollup> {
        let res = self.resolution_for(window_ns);
        let from = now_ns.saturating_sub(window_ns);
        let s = self
            .scalars
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))?;
        let mut out: Option<Rollup> = None;
        for (_, r) in s.rings[res].window(from, now_ns) {
            out.get_or_insert(Rollup::EMPTY).merge(r);
        }
        out
    }

    /// Windowed delta of a monotone counter family: per-series
    /// `last-bucket max − first-bucket min` (clamped at 0 across resets),
    /// summed over every series named `name`. `None` when no series has
    /// data in the window.
    pub fn counter_delta(&self, name: &str, window_ns: u64, now_ns: u64) -> Option<f64> {
        let res = self.resolution_for(window_ns);
        let from = now_ns.saturating_sub(window_ns);
        let mut total: Option<f64> = None;
        for s in self
            .scalars
            .iter()
            .filter(|s| s.name == name && s.kind == SeriesKind::Counter)
        {
            let buckets = s.rings[res].window(from, now_ns);
            if let (Some((_, first)), Some((_, last))) = (buckets.first(), buckets.last()) {
                *total.get_or_insert(0.0) += (last.max - first.min).max(0.0);
            }
        }
        total
    }

    /// Folded histogram over every series named `name` within the window.
    pub fn window_histogram(
        &self,
        name: &str,
        window_ns: u64,
        now_ns: u64,
    ) -> Option<LatencyHistogram> {
        let res = self.resolution_for(window_ns);
        let from = now_ns.saturating_sub(window_ns);
        let mut out: Option<LatencyHistogram> = None;
        for s in self.hists.iter().filter(|s| s.name == name) {
            for (_, h) in s.rings[res].window(from, now_ns) {
                *out.get_or_insert_with(LatencyHistogram::new) += h.clone();
            }
        }
        out
    }

    /// Windowed quantile of a histogram family: fold the buckets in range,
    /// then ask the merged histogram — never an average of per-bucket
    /// quantiles.
    pub fn quantile_ns(&self, name: &str, q: f64, window_ns: u64, now_ns: u64) -> Option<u64> {
        self.window_histogram(name, window_ns, now_ns)
            .filter(|h| !h.is_empty())
            .map(|h| h.quantile_ns(q))
    }

    /// Trend of a gauge series: per-second change of the bucket means
    /// between the first and last occupied bucket in the window, always
    /// at the *finest* resolution (a trend needs granularity; if the fine
    /// ring is shorter than the window, the slope covers its newest
    /// span). `None` with fewer than two occupied buckets.
    pub fn slope_per_sec(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        window_ns: u64,
        now_ns: u64,
    ) -> Option<f64> {
        let res = 0;
        let from = now_ns.saturating_sub(window_ns);
        let s = self
            .scalars
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))?;
        let buckets = s.rings[res].window(from, now_ns);
        let (t0, first) = buckets.first()?;
        let (t1, last) = buckets.last()?;
        if t1 <= t0 {
            return None;
        }
        Some((last.mean() - first.mean()) / ((t1 - t0) as f64 / 1e9))
    }

    /// Occupied buckets of one scalar series at one resolution, oldest
    /// first (tests and the flight-recorder excerpt).
    pub fn scalar_buckets(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        resolution: usize,
        from_ns: u64,
        to_ns: u64,
    ) -> Vec<(u64, Rollup)> {
        self.scalars
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))
            .map(|s| {
                s.rings[resolution]
                    .window(from_ns, to_ns)
                    .into_iter()
                    .map(|(t, r)| (t, *r))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Occupied buckets of one histogram series at one resolution, oldest
    /// first.
    pub fn histogram_buckets(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        resolution: usize,
        from_ns: u64,
        to_ns: u64,
    ) -> Vec<(u64, LatencyHistogram)> {
        self.hists
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))
            .map(|s| {
                s.rings[resolution]
                    .window(from_ns, to_ns)
                    .into_iter()
                    .map(|(t, h)| (t, h.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// A JSON excerpt of every series over the last `window_ns`, at the
    /// finest covering resolution, capped at the newest
    /// `MAX_EXCERPT_BUCKETS` buckets per series — the "tsdb" section of a
    /// flight-recorder dump.
    pub fn excerpt_json(&self, window_ns: u64, now_ns: u64) -> String {
        const MAX_EXCERPT_BUCKETS: usize = 32;
        let res = self.resolution_for(window_ns);
        let from = now_ns.saturating_sub(window_ns);
        let series_key = |name: &str, labels: &[(String, String)]| {
            let mut key = name.to_string();
            if !labels.is_empty() {
                key.push('{');
                for (i, (k, v)) in labels.iter().enumerate() {
                    if i > 0 {
                        key.push(',');
                    }
                    key.push_str(&format!("{k}=\"{v}\""));
                }
                key.push('}');
            }
            key
        };
        let mut parts: Vec<String> = Vec::new();
        for s in &self.scalars {
            let buckets = s.rings[res].window(from, now_ns);
            if buckets.is_empty() {
                continue;
            }
            let tail = &buckets[buckets.len().saturating_sub(MAX_EXCERPT_BUCKETS)..];
            let rows: Vec<String> = tail
                .iter()
                .map(|(t, r)| {
                    format!(
                        "{{\"t_ns\": {t}, \"sum\": {}, \"count\": {}, \"min\": {}, \"max\": {}}}",
                        crate::expose::json_f64(r.sum),
                        r.count,
                        crate::expose::json_f64(r.min),
                        crate::expose::json_f64(r.max),
                    )
                })
                .collect();
            parts.push(format!(
                "{{\"series\": {}, \"kind\": \"{}\", \"buckets\": [{}]}}",
                crate::expose::json_string(&series_key(&s.name, &s.labels)),
                match s.kind {
                    SeriesKind::Counter => "counter",
                    SeriesKind::Gauge => "gauge",
                },
                rows.join(", ")
            ));
        }
        for s in &self.hists {
            let buckets = s.rings[res].window(from, now_ns);
            if buckets.is_empty() {
                continue;
            }
            let tail = &buckets[buckets.len().saturating_sub(MAX_EXCERPT_BUCKETS)..];
            let rows: Vec<String> = tail
                .iter()
                .map(|(t, h)| {
                    format!(
                        "{{\"t_ns\": {t}, \"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
                        h.count(),
                        h.sum_ns(),
                        h.p50_ns(),
                        h.p99_ns(),
                    )
                })
                .collect();
            parts.push(format!(
                "{{\"series\": {}, \"kind\": \"histogram\", \"buckets\": [{}]}}",
                crate::expose::json_string(&series_key(&s.name, &s.labels)),
                rows.join(", ")
            ));
        }
        format!("[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MergeMode, Registry};

    const SEC: u64 = 1_000_000_000;

    fn small_cfg() -> TsdbConfig {
        TsdbConfig::with_resolutions(vec![
            RollupSpec {
                bucket_ns: SEC,
                len: 8,
            },
            RollupSpec {
                bucket_ns: 10 * SEC,
                len: 6,
            },
        ])
    }

    #[test]
    fn default_config_is_three_resolutions_finest_first() {
        let t = Tsdb::new(&TsdbConfig::default());
        assert_eq!(t.resolutions().len(), 3);
        assert_eq!(t.resolutions()[0].bucket_ns, SEC);
        assert_eq!(t.resolutions()[0].len, 120);
        assert!(t.resolutions()[1].bucket_ns < t.resolutions()[2].bucket_ns);
        assert!(Tsdb::new(&TsdbConfig::with_resolutions(Vec::new()))
            .resolutions()
            .len()
            .eq(&3));
    }

    #[test]
    fn gauge_aggregate_and_slope() {
        let mut t = Tsdb::new(&small_cfg());
        // Occupancy climbing 0.1 -> 0.5 over five seconds.
        for i in 0..5u64 {
            t.record_scalar(
                i * SEC + SEC / 2,
                "occ",
                &[("shard".into(), "0".into())],
                SeriesKind::Gauge,
                0.1 * (i + 1) as f64,
            );
        }
        let now = 5 * SEC;
        let agg = t.aggregate("occ", 10 * SEC, now).expect("data");
        assert_eq!(agg.count, 5);
        assert_eq!(agg.min, 0.1);
        assert_eq!(agg.max, 0.5);
        assert!((agg.mean() - 0.3).abs() < 1e-12);
        let slope = t
            .slope_per_sec("occ", &[("shard", "0")], 10 * SEC, now)
            .expect("slope");
        // 0.1 per second, bucket means one second apart.
        assert!((slope - 0.1).abs() < 1e-9, "slope {slope}");
        // Exact-label miss.
        assert!(t
            .aggregate_labeled("occ", &[("shard", "1")], 10 * SEC, now)
            .is_none());
    }

    #[test]
    fn counter_delta_is_max_minus_min_per_series_summed() {
        let mut t = Tsdb::new(&small_cfg());
        for (shard, base) in [("0", 100u64), ("1", 500u64)] {
            for i in 0..4u64 {
                t.record_scalar(
                    i * SEC,
                    "decisions",
                    &[("shard".into(), shard.into())],
                    SeriesKind::Counter,
                    (base + i * 10) as f64,
                );
            }
        }
        // Each series climbed 30; the fleet delta is 60.
        assert_eq!(t.counter_delta("decisions", 10 * SEC, 3 * SEC), Some(60.0));
        // A 2 s window ending at t=3 s spans the 110→130 climb: 20/series.
        assert_eq!(t.counter_delta("decisions", 2 * SEC, 3 * SEC), Some(40.0));
        assert_eq!(t.counter_delta("nope", 10 * SEC, 3 * SEC), None);
    }

    #[test]
    fn ring_wraparound_drops_oldest_and_clears_gaps() {
        let mut t = Tsdb::new(&small_cfg());
        // 12 seconds of data into an 8-bucket fine ring.
        for i in 0..12u64 {
            t.record_scalar(i * SEC, "g", &[], SeriesKind::Gauge, i as f64);
        }
        let buckets = t.scalar_buckets("g", &[], 0, 0, 12 * SEC);
        assert_eq!(buckets.len(), 8, "fine ring keeps the newest 8");
        assert_eq!(buckets.first().unwrap().1.min, 4.0);
        assert_eq!(buckets.last().unwrap().1.max, 11.0);
        // The coarse ring (10 s buckets) still covers everything.
        let coarse = t.scalar_buckets("g", &[], 1, 0, 12 * SEC);
        assert_eq!(coarse.len(), 2);
        assert_eq!(coarse[0].1.count, 10);
        assert_eq!(coarse[1].1.count, 2);
        // A sparse jump far ahead clears the whole fine ring first.
        t.record_scalar(100 * SEC, "g", &[], SeriesKind::Gauge, 42.0);
        let after = t.scalar_buckets("g", &[], 0, 0, 200 * SEC);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].1.count, 1);
    }

    #[test]
    fn histogram_deltas_fold_to_windowed_quantiles() {
        let mut t = Tsdb::new(&small_cfg());
        let mut cum = LatencyHistogram::new();
        // Second 0: fast decisions. Second 1: slow ones.
        for _ in 0..100 {
            cum.record_ns(1_000);
        }
        t.record_histogram(0, "lat", &[], &cum);
        for _ in 0..100 {
            cum.record_ns(1_000_000);
        }
        t.record_histogram(SEC, "lat", &[], &cum);
        // Whole-window p50 sits between the two modes; the slow-second
        // window only sees the slow mode.
        let whole = t.window_histogram("lat", 10 * SEC, SEC).unwrap();
        assert_eq!(whole.count(), 200);
        let p99_slow = t.quantile_ns("lat", 0.99, 1, SEC).unwrap();
        assert!(p99_slow > 500_000, "slow-window p99 {p99_slow}");
        let buckets = t.histogram_buckets("lat", &[], 0, 0, 2 * SEC);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].1.count(), 100);
        assert_eq!(buckets[1].1.count(), 100);
        // Reset detection: a shrunk cumulative histogram re-baselines.
        let mut fresh = LatencyHistogram::new();
        fresh.record_ns(2_000);
        t.record_histogram(2 * SEC, "lat", &[], &fresh);
        let b2 = t.histogram_buckets("lat", &[], 0, 0, 3 * SEC);
        assert_eq!(b2.last().unwrap().1.count(), 1);
    }

    #[test]
    fn sweep_creates_shard_labelled_series() {
        let mut r = Registry::new();
        let c = r.counter("hits", "hits");
        r.add(c, 5);
        let g = r.gauge("depth", "depth", MergeMode::Sum);
        r.set(g, 3.0);
        let h = r.histogram("lat", "lat");
        r.observe_ns(h, 1_000);
        let snap = r.snapshot();
        let mut t = Tsdb::new(&small_cfg());
        t.sweep(SEC, &snap, Some(2));
        assert_eq!(t.series_count(), 3);
        assert_eq!(t.last_t_ns(), SEC);
        let agg = t
            .aggregate_labeled("depth", &[("shard", "2")], 10 * SEC, SEC)
            .expect("swept");
        assert_eq!(agg.max, 3.0);
        assert!(t.quantile_ns("lat", 0.5, 10 * SEC, SEC).is_some());
        // A second sweep with identical cumulative histograms adds no
        // histogram delta but does add scalar samples.
        t.sweep(2 * SEC, &snap, Some(2));
        assert_eq!(
            t.window_histogram("lat", 10 * SEC, 2 * SEC)
                .unwrap()
                .count(),
            1
        );
        let agg = t
            .aggregate_labeled("hits", &[("shard", "2")], 10 * SEC, 2 * SEC)
            .unwrap();
        assert_eq!(agg.count, 2);
    }

    #[test]
    fn excerpt_json_is_balanced_and_names_series() {
        let mut t = Tsdb::new(&small_cfg());
        t.record_scalar(
            SEC,
            "occ",
            &[("shard".into(), "0".into())],
            SeriesKind::Gauge,
            0.5,
        );
        let mut h = LatencyHistogram::new();
        h.record_ns(5_000);
        t.record_histogram(SEC, "lat", &[], &h);
        let json = t.excerpt_json(10 * SEC, SEC);
        assert!(json.contains("\"occ{shard=\\\"0\\\"}\""), "{json}");
        assert!(json.contains("\"kind\": \"histogram\""));
        assert!(json.contains("\"p99_ns\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
