//! Forecast error metrics.
//!
//! Table II of the paper compares prediction algorithms by Root Mean Square
//! Error `RMSE(h*) = sqrt(E[(h* − h)²])` between predicted and actual
//! request counts. MAE and MAPE are included as standard companions used in
//! the bike-sharing prediction literature the paper builds on.

/// Root mean square error between predictions and actuals.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Examples
///
/// ```
/// use esharing_stats::metrics::rmse;
///
/// assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
/// assert_eq!(rmse(&[0.0, 0.0], &[3.0, 4.0]), (12.5f64).sqrt());
/// ```
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    check_pair(predicted, actual);
    let mse: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / predicted.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(predicted: &[f64], actual: &[f64]) -> f64 {
    check_pair(predicted, actual);
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Mean absolute percentage error over entries whose actual value is
/// non-zero; returns `None` when every actual is zero.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mape(predicted: &[f64], actual: &[f64]) -> Option<f64> {
    check_pair(predicted, actual);
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, a) in predicted.iter().zip(actual) {
        if *a != 0.0 {
            sum += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(100.0 * sum / n as f64)
    }
}

fn check_pair(predicted: &[f64], actual: &[f64]) {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "prediction and actual lengths differ"
    );
    assert!(!predicted.is_empty(), "metric over empty series");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_zero_for_perfect() {
        assert_eq!(rmse(&[5.0, 6.0, 7.0], &[5.0, 6.0, 7.0]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors 3 and 4 -> mse 12.5 -> rmse sqrt(12.5).
        let r = rmse(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((r - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_at_least_mae() {
        let p = [1.0, 5.0, 3.0, 8.0];
        let a = [2.0, 3.0, 3.5, 4.0];
        assert!(rmse(&p, &a) >= mae(&p, &a));
    }

    #[test]
    fn mae_known_value() {
        assert_eq!(mae(&[1.0, 2.0], &[2.0, 4.0]), 1.5);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let m = mape(&[2.0, 5.0], &[0.0, 4.0]).unwrap();
        assert!((m - 25.0).abs() < 1e-12);
        assert_eq!(mape(&[1.0], &[0.0]), None);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_series_panics() {
        let _ = rmse(&[], &[]);
    }
}
