//! Criterion benches for the geometry substrate: nearest-neighbour index
//! queries (the hot loop of every online algorithm) and geohash codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esharing_geo::{geohash, LatLon, NearestNeighborIndex, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn uniform(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nearest_neighbor");
    for n in [10usize, 100, 1_000] {
        let pts = uniform(n, 3_000.0, 1);
        let mut index = NearestNeighborIndex::new(150.0);
        for &p in &pts {
            index.insert(p);
        }
        let queries = uniform(256, 3_000.0, 2);
        group.bench_with_input(BenchmarkId::new("bucket_index", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(index.nearest(queries[i]))
            });
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % queries.len();
                let q = queries[i];
                black_box(
                    pts.iter()
                        .map(|p| (p, q.distance(*p)))
                        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite")),
                )
            });
        });
    }
    group.finish();
}

fn bench_geohash(c: &mut Criterion) {
    let coord = LatLon::new(39.9288, 116.3888).expect("valid");
    let hash = geohash::encode(coord, 7).expect("encode");
    let mut group = c.benchmark_group("geohash");
    group.bench_function("encode_7", |b| {
        b.iter(|| black_box(geohash::encode(coord, 7).expect("encode")));
    });
    group.bench_function("decode_7", |b| {
        b.iter(|| black_box(geohash::decode(&hash).expect("decode")));
    });
    group.finish();
}

criterion_group!(benches, bench_nn, bench_geohash);
criterion_main!(benches);
