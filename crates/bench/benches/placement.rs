//! Criterion benches for the PLP solvers: the offline 1.61-factor greedy
//! scaling in n (the paper's O(N³)), and the per-request throughput of the
//! three online algorithms.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use esharing_bench::PerfEmitter;
use esharing_geo::Point;
use esharing_placement::offline::{jms_greedy, jms_greedy_reference};
use esharing_placement::online::{
    DeviationConfig, DeviationPenalty, Meyerson, OnlineKMeans, OnlinePlacement,
};
use esharing_placement::PlpInstance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn uniform(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

fn bench_offline(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_jms");
    for n in [50usize, 100, 200] {
        let instance = PlpInstance::with_uniform_cost(uniform(n, 1_000.0, 1), 5_000.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| black_box(jms_greedy(inst)));
        });
    }
    group.finish();
}

fn bench_online(c: &mut Criterion) {
    let stream = uniform(1_000, 1_000.0, 2);
    let history = uniform(200, 1_000.0, 3);
    let landmark_inst = PlpInstance::with_uniform_cost(history.clone(), 5_000.0);
    let landmarks = jms_greedy(&landmark_inst).facility_points(&landmark_inst);
    let k = landmarks.len().max(1);

    let mut group = c.benchmark_group("online_per_request");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("meyerson", |b| {
        b.iter(|| {
            let mut alg = Meyerson::new(5_000.0, 7);
            black_box(alg.run(stream.iter().copied()))
        });
    });
    group.bench_function("online_kmeans", |b| {
        b.iter(|| {
            let mut alg = OnlineKMeans::new(k, stream.len(), 5_000.0, 7);
            black_box(alg.run(stream.iter().copied()))
        });
    });
    group.bench_function("deviation_penalty", |b| {
        b.iter(|| {
            let mut alg = DeviationPenalty::new(
                landmarks.clone(),
                history.clone(),
                DeviationConfig {
                    space_cost: 5_000.0,
                    seed: 7,
                    ..DeviationConfig::default()
                },
            );
            black_box(alg.run(stream.iter().copied()))
        });
    });
    group.finish();
}

/// Perf-trajectory emission: times the cached-cost parallel greedy against
/// the sequential reference at increasing sizes and writes
/// `BENCH_placement.json` at the repo root (see `esharing_bench::perf`).
fn perf_trajectory() {
    let mut perf = PerfEmitter::new("placement");
    for (n, iters) in [(50usize, 9), (100, 7), (200, 5), (400, 3)] {
        let instance = PlpInstance::with_uniform_cost(uniform(n, 1_000.0, 1), 5_000.0);
        perf.measure("jms_greedy", n, iters, || black_box(jms_greedy(&instance)));
        perf.measure("jms_greedy_reference", n, iters, || {
            black_box(jms_greedy_reference(&instance))
        });
    }
    match perf.write() {
        Ok(path) => eprintln!("perf trajectory written to {}", path.display()),
        Err(e) => eprintln!("perf trajectory emission failed: {e}"),
    }
}

criterion_group!(benches, bench_offline, bench_online);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    perf_trajectory();
}
