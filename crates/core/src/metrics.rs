//! Aggregate system metrics.

use esharing_placement::PlacementCost;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Running totals across the lifetime of an [`ESharing`](crate::ESharing)
/// instance.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// Tier-1 placement cost (walking + space, meters).
    pub placement: PlacementCost,
    /// Live requests handled by the online algorithm.
    pub requests_served: u64,
    /// Tier-2: total maintenance cost in dollars (tour cost + incentives).
    pub maintenance_cost: f64,
    /// Incentives paid to users in dollars.
    pub incentives_paid: f64,
    /// Bikes recharged by operators.
    pub bikes_charged: u64,
    /// Low bikes left uncharged when shifts ended.
    pub bikes_missed: u64,
    /// Operator distance travelled in meters.
    pub operator_distance_m: f64,
    /// Maintenance periods executed.
    pub maintenance_periods: u64,
}

impl SystemMetrics {
    /// Average walking distance per served request, in meters.
    pub fn avg_walk_m(&self) -> f64 {
        if self.requests_served == 0 {
            0.0
        } else {
            self.placement.walking / self.requests_served as f64
        }
    }

    /// Fraction of low bikes charged across all maintenance periods.
    pub fn charged_fraction(&self) -> f64 {
        let total = self.bikes_charged + self.bikes_missed;
        if total == 0 {
            1.0
        } else {
            self.bikes_charged as f64 / total as f64
        }
    }
}

impl fmt::Display for SystemMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "requests served : {}", self.requests_served)?;
        writeln!(f, "placement cost  : {}", self.placement)?;
        writeln!(f, "avg walk        : {:.1} m", self.avg_walk_m())?;
        writeln!(f, "maintenance     : ${:.2}", self.maintenance_cost)?;
        writeln!(f, "incentives      : ${:.2}", self.incentives_paid)?;
        write!(
            f,
            "charged         : {:.1}% ({} of {})",
            100.0 * self.charged_fraction(),
            self.bikes_charged,
            self.bikes_charged + self.bikes_missed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_metrics_safe() {
        let m = SystemMetrics::default();
        assert_eq!(m.avg_walk_m(), 0.0);
        assert_eq!(m.charged_fraction(), 1.0);
    }

    #[test]
    fn averages() {
        let m = SystemMetrics {
            placement: PlacementCost::new(1000.0, 500.0),
            requests_served: 10,
            bikes_charged: 3,
            bikes_missed: 1,
            ..SystemMetrics::default()
        };
        assert_eq!(m.avg_walk_m(), 100.0);
        assert_eq!(m.charged_fraction(), 0.75);
    }

    #[test]
    fn display_includes_key_lines() {
        let m = SystemMetrics::default();
        let s = m.to_string();
        assert!(s.contains("requests served"));
        assert!(s.contains("charged"));
    }
}
